//! The timed layer: CUDA-like streams over copy and compute engines.
//!
//! Models the transfer/execution overlap the paper's design exploits
//! (Sec. 3.2, Figures 3/4/10):
//!
//! * One **H2D copy engine** and one **D2H copy engine** per GPU — transfer
//!   operations "cannot overlap with each other … instead, they can overlap
//!   with kernel execution" (Sec. 3.2, citing the CUDA stream docs).
//! * One **compute engine** with up to `max_concurrent_kernels` (32) in
//!   flight — the CUDA limit the paper cites. A streamed page is far too
//!   small to saturate the whole GPU, so concurrent page-kernels genuinely
//!   multiply throughput; this is the mechanism that lets PageRank become
//!   transfer-bound (the Sec. 7.5 arithmetic: RMAT30's ten iterations ≈
//!   `114 GB × 10 ÷ 6 GB/s`) and that gives Fig. 10 its gain up to 32
//!   streams.
//! * **Streams** impose program order: an operation in stream *s* may not
//!   begin before the previous operation in *s* finished — which is also
//!   what makes per-stream SPBuf/RABuf slots safe to reuse.
//! * **Launch-overhead hiding**: a kernel submitted while the compute
//!   engine is still busy was already "prepared in the queues of GPU in
//!   advance" (Sec. 3.2) and skips the launch overhead; a kernel the engine
//!   had to idle-wait for pays it. This is the mechanism behind Fig. 10's
//!   benefit from deeper stream counts.

use crate::config::{GpuConfig, PcieConfig};
use gts_sim::resource::Scheduled;
use gts_sim::{Resource, SimDuration, SimTime};
use gts_telemetry::{keys, SpanCat, Telemetry, Track};

/// Kernel cost class: which per-slot / per-atomic rates apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// Memory-bound traversal kernels (BFS, SSSP, CC, BC).
    Traversal,
    /// Arithmetic-heavy kernels (PageRank-like).
    Compute,
}

/// Work observed by the functional execution of one kernel launch, used to
/// derive its simulated duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCost {
    /// Cost class.
    pub class: KernelClass,
    /// Warp lane-slots consumed (see [`crate::warp`]).
    pub lane_slots: u64,
    /// Atomic updates performed.
    pub atomic_ops: u64,
}

impl KernelCost {
    /// Simulated execution duration under `cfg` (excluding launch overhead).
    pub fn duration(&self, cfg: &GpuConfig) -> SimDuration {
        let (slot_ns, atomic_ns) = match self.class {
            KernelClass::Traversal => (cfg.traversal_slot_ns, cfg.traversal_atomic_ns),
            KernelClass::Compute => (cfg.compute_slot_ns, cfg.compute_atomic_ns),
        };
        SimDuration::from_secs_f64(
            (self.lane_slots as f64 * slot_ns + self.atomic_ops as f64 * atomic_ns) / 1e9,
        )
    }
}

/// Per-GPU simulated clock: engines, stream chains, transfer statistics.
#[derive(Debug)]
pub struct GpuTimer {
    cfg: GpuConfig,
    pcie: PcieConfig,
    h2d: Resource,
    d2h: Resource,
    p2p: Resource,
    compute: Resource,
    stream_tail: Vec<SimTime>,
    telemetry: Telemetry,
    pid: u32,
    spans: bool,
    stalls: u64,
    bytes_h2d: u64,
    bytes_d2h: u64,
    bytes_p2p: u64,
    kernel_time: SimDuration,
    transfer_time: SimDuration,
    kernels: u64,
    hidden_launches: u64,
}

impl GpuTimer {
    /// A timer for one GPU with `num_streams` CUDA-like streams.
    ///
    /// # Panics
    /// Panics if `num_streams` is zero.
    pub fn new(cfg: GpuConfig, pcie: PcieConfig, num_streams: usize) -> Self {
        assert!(num_streams > 0, "need at least one stream");
        GpuTimer {
            h2d: Resource::new("h2d", 1),
            d2h: Resource::new("d2h", 1),
            p2p: Resource::new("p2p", 1),
            compute: Resource::new("compute", cfg.max_concurrent_kernels.max(1)),
            stream_tail: vec![SimTime::ZERO; num_streams],
            telemetry: Telemetry::new(),
            pid: 0,
            spans: false,
            stalls: 0,
            bytes_h2d: 0,
            bytes_d2h: 0,
            bytes_p2p: 0,
            kernel_time: SimDuration::ZERO,
            transfer_time: SimDuration::ZERO,
            kernels: 0,
            hidden_launches: 0,
            cfg,
            pcie,
        }
    }

    /// Share `tel` as this timer's recording surface, drawing spans under
    /// process `pid::gpu(gpu_index)` (Fig. 3/4-style profiles when `tel`
    /// has spans enabled). Registers the track names so exported traces
    /// label the copy engines and streams.
    pub fn attach_telemetry(&mut self, tel: Telemetry, gpu_index: u32) {
        self.pid = keys::pid::gpu(gpu_index);
        self.spans = tel.spans_enabled();
        if self.spans {
            tel.name_process(self.pid, format!("GPU {gpu_index}"));
            tel.name_thread(Track::new(self.pid, keys::tid::H2D), "h2d");
            tel.name_thread(Track::new(self.pid, keys::tid::D2H), "d2h");
            tel.name_thread(Track::new(self.pid, keys::tid::P2P), "p2p");
            for s in 0..self.stream_tail.len() {
                tel.name_thread(
                    Track::new(self.pid, keys::tid::stream(s)),
                    format!("stream{s}"),
                );
            }
        }
        self.telemetry = tel;
    }

    /// Flush this timer's counters into `tel`'s registry under GPU
    /// `gpu_index`'s scope plus the global aggregates.
    pub fn flush_to(&self, tel: &Telemetry, gpu_index: u32) {
        let i = gpu_index;
        tel.add(keys::gpu(i, keys::GPU_BYTES_H2D), self.bytes_h2d);
        tel.add(keys::gpu(i, keys::GPU_BYTES_D2H), self.bytes_d2h);
        tel.add(keys::gpu(i, keys::GPU_BYTES_P2P), self.bytes_p2p);
        tel.add(
            keys::gpu(i, keys::GPU_KERNEL_TIME_NS),
            self.kernel_time.as_nanos(),
        );
        tel.add(
            keys::gpu(i, keys::GPU_TRANSFER_TIME_NS),
            self.transfer_time.as_nanos(),
        );
        tel.add(keys::gpu(i, keys::GPU_KERNELS), self.kernels);
        tel.add(
            keys::gpu(i, keys::GPU_HIDDEN_LAUNCHES),
            self.hidden_launches,
        );
        tel.add(keys::KERNEL_LAUNCHES, self.kernels);
        tel.add(keys::STREAM_STALLS, self.stalls);
    }

    /// GPU configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// PCI-E link configuration.
    pub fn pcie(&self) -> &PcieConfig {
        &self.pcie
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.stream_tail.len()
    }

    /// Blocking chunk copy host→device at rate `c1` (the initial WA copy,
    /// Fig. 2 step 1). Not bound to a stream.
    pub fn chunk_h2d(&mut self, bytes: u64, ready: SimTime) -> Scheduled {
        self.bytes_h2d += bytes;
        let dur = self.pcie.latency + self.pcie.chunk_bw.transfer_time(bytes);
        self.transfer_time += dur;
        let s = self.h2d.submit(ready, dur);
        self.record(keys::tid::H2D, "chunk WA", SpanCat::Copy, s);
        s
    }

    /// Blocking chunk copy device→host at rate `c1` (WA write-back,
    /// Fig. 2 step 3).
    pub fn chunk_d2h(&mut self, bytes: u64, ready: SimTime) -> Scheduled {
        self.bytes_d2h += bytes;
        let dur = self.pcie.latency + self.pcie.chunk_bw.transfer_time(bytes);
        self.transfer_time += dur;
        let s = self.d2h.submit(ready, dur);
        self.record(keys::tid::D2H, "chunk WA", SpanCat::Copy, s);
        s
    }

    /// Asynchronous streamed copy host→device at rate `c2`, ordered after
    /// the previous operation in `stream` (SPj/RAj transfers, Fig. 2 step 2).
    pub fn stream_h2d(
        &mut self,
        stream: usize,
        bytes: u64,
        ready: SimTime,
        label: &str,
    ) -> Scheduled {
        let stream = stream % self.stream_tail.len();
        self.bytes_h2d += bytes;
        let ready = ready.max(self.stream_tail[stream]);
        let dur = self.pcie.latency + self.pcie.stream_bw.transfer_time(bytes);
        self.transfer_time += dur;
        let s = self.h2d.submit(ready, dur);
        if s.start > ready {
            self.stalls += 1;
        }
        self.stream_tail[stream] = s.end;
        self.record(keys::tid::stream(stream), label, SpanCat::Copy, s);
        s
    }

    /// Asynchronous streamed copy device→host at rate `c2`. The GTS engine
    /// moves its per-level result bitmaps with blocking [`Self::chunk_d2h`]
    /// copies; this streamed variant exists for engines that overlap
    /// result write-back with ongoing kernels (e.g. per-stream partial
    /// results).
    pub fn stream_d2h(
        &mut self,
        stream: usize,
        bytes: u64,
        ready: SimTime,
        label: &str,
    ) -> Scheduled {
        let stream = stream % self.stream_tail.len();
        self.bytes_d2h += bytes;
        let ready = ready.max(self.stream_tail[stream]);
        let dur = self.pcie.latency + self.pcie.stream_bw.transfer_time(bytes);
        self.transfer_time += dur;
        let s = self.d2h.submit(ready, dur);
        if s.start > ready {
            self.stalls += 1;
        }
        self.stream_tail[stream] = s.end;
        self.record(keys::tid::stream(stream), label, SpanCat::Copy, s);
        s
    }

    /// Launch a kernel in `stream`; `ready` is when its inputs are on the
    /// device. Launch overhead is hidden iff the compute engine is still
    /// busy when the kernel becomes ready (it was queued in advance).
    pub fn stream_kernel(
        &mut self,
        stream: usize,
        cost: KernelCost,
        ready: SimTime,
        label: &str,
    ) -> Scheduled {
        let stream = stream % self.stream_tail.len();
        let ready = ready.max(self.stream_tail[stream]);
        let work = cost.duration(&self.cfg);
        // Launch overhead is hidden only when the kernel had to queue
        // anyway — i.e. every compute slot was still busy when its inputs
        // landed, so the driver prepared it "in the queues of GPU in
        // advance" (Sec. 3.2). If a slot was free, the device idled
        // through the launch latency.
        let mut dur = work;
        if ready < self.compute.earliest_free() {
            // Every slot still busy at `ready`: the kernel queued, its
            // launch latency overlapped with running work.
            self.hidden_launches += 1;
        } else {
            dur += self.cfg.launch_overhead;
        }
        // kernel_time is pure execution work (Table 1's denominator);
        // launch overhead is pipeline friction, not kernel service.
        self.kernel_time += work;
        self.kernels += 1;
        let s = self.compute.submit(ready, dur);
        if s.start > ready {
            self.stalls += 1;
        }
        self.stream_tail[stream] = s.end;
        self.record(keys::tid::stream(stream), label, SpanCat::Kernel, s);
        s
    }

    /// Peer-to-peer copy to another GPU (Strategy-P's WA merge, Sec. 4.1).
    /// Scheduled on this (source) GPU's P2P engine.
    pub fn p2p_copy(&mut self, bytes: u64, ready: SimTime) -> Scheduled {
        self.bytes_p2p += bytes;
        let dur = self.pcie.latency + self.pcie.p2p_bw.transfer_time(bytes);
        let s = self.p2p.submit(ready, dur);
        self.record(keys::tid::P2P, "WA merge", SpanCat::Copy, s);
        s
    }

    /// Total bytes copied peer-to-peer to other GPUs (tracked separately
    /// from the PCI-E host-link statistics: it is a different bus).
    pub fn bytes_p2p(&self) -> u64 {
        self.bytes_p2p
    }

    /// Device-wide synchronisation point: when everything submitted so far
    /// has completed.
    pub fn sync(&self) -> SimTime {
        let engines = self
            .h2d
            .drain_time()
            .max(self.d2h.drain_time())
            .max(self.p2p.drain_time())
            .max(self.compute.drain_time());
        self.stream_tail.iter().copied().fold(engines, SimTime::max)
    }

    /// Total bytes copied host→device.
    pub fn bytes_h2d(&self) -> u64 {
        self.bytes_h2d
    }

    /// Total bytes copied device→host.
    pub fn bytes_d2h(&self) -> u64 {
        self.bytes_d2h
    }

    /// Accumulated kernel service time (Table 1's denominator).
    pub fn kernel_time(&self) -> SimDuration {
        self.kernel_time
    }

    /// Accumulated transfer service time (Table 1's numerator).
    pub fn transfer_time(&self) -> SimDuration {
        self.transfer_time
    }

    /// Kernels launched.
    pub fn kernels(&self) -> u64 {
        self.kernels
    }

    /// Kernels whose launch overhead was hidden by queue-ahead.
    pub fn hidden_launches(&self) -> u64 {
        self.hidden_launches
    }

    /// Stream operations whose start was delayed past their ready time by
    /// a busy copy/compute engine.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    fn record(&self, tid: u32, label: &str, cat: SpanCat, s: Scheduled) {
        if self.spans {
            self.telemetry
                .record_span(Track::new(self.pid, tid), cat, label, s.start, s.end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_sim::Bandwidth;

    fn timer(streams: usize) -> GpuTimer {
        let mut cfg = GpuConfig::titan_x();
        cfg.launch_overhead = SimDuration::from_micros(10);
        let pcie = PcieConfig {
            chunk_bw: Bandwidth::bytes_per_sec(2_000_000_000),
            stream_bw: Bandwidth::bytes_per_sec(1_000_000_000),
            p2p_bw: Bandwidth::bytes_per_sec(4_000_000_000),
            latency: SimDuration::ZERO,
        };
        GpuTimer::new(cfg, pcie, streams)
    }

    fn cost_ns(ns: u64) -> KernelCost {
        // Traversal slots at 0.6 ns each: pick slots so duration ≈ ns.
        KernelCost {
            class: KernelClass::Traversal,
            lane_slots: (ns as f64 / 0.6) as u64,
            atomic_ops: 0,
        }
    }

    #[test]
    fn chunk_copies_use_c1_streamed_use_c2() {
        let mut t = timer(1);
        let a = t.chunk_h2d(1_000_000_000, SimTime::ZERO);
        assert_eq!((a.end - a.start).as_nanos(), 500_000_000); // c1 = 2 GB/s
        let b = t.stream_h2d(0, 1_000_000_000, a.end, "SP");
        assert_eq!((b.end - b.start).as_nanos(), 1_000_000_000); // c2 = 1 GB/s
    }

    #[test]
    fn stream_order_is_preserved() {
        let mut t = timer(2);
        let c = t.stream_h2d(0, 1_000, SimTime::ZERO, "SP1");
        let k = t.stream_kernel(0, cost_ns(5_000), c.end, "K1");
        assert!(k.start >= c.end);
        // Next copy in the same stream waits for the kernel (SPBuf reuse).
        let c2 = t.stream_h2d(0, 1_000, SimTime::ZERO, "SP2");
        assert!(c2.start >= k.end);
    }

    #[test]
    fn two_streams_overlap_copy_with_kernel() {
        let mut t = timer(2);
        // Stream 0: copy then long kernel.
        let c0 = t.stream_h2d(0, 1_000_000, SimTime::ZERO, "SP1");
        let k0 = t.stream_kernel(0, cost_ns(10_000_000), c0.end, "K1");
        // Stream 1's copy proceeds during stream 0's kernel.
        let c1 = t.stream_h2d(1, 1_000_000, SimTime::ZERO, "SP2");
        assert!(c1.start < k0.end, "copy must overlap kernel execution");
        assert!(c1.start >= c0.end, "copies serialise on the copy engine");
    }

    #[test]
    fn launch_overhead_hidden_only_when_all_slots_busy() {
        // Wide engine: a kernel arriving while slots sit free pays the
        // launch latency (the device idle-waited for it).
        let mut t = timer(2);
        let c0 = t.stream_h2d(0, 1_000_000, SimTime::ZERO, "SP1");
        let k0 = t.stream_kernel(0, cost_ns(50_000_000), c0.end, "K1");
        assert_eq!(
            (k0.end - k0.start).as_nanos(),
            cost_ns(50_000_000).duration(t.config()).as_nanos() + 10_000
        );
        let c1 = t.stream_h2d(1, 1_000_000, SimTime::ZERO, "SP2");
        let k1 = t.stream_kernel(1, cost_ns(50_000_000), c1.end, "K2");
        // 31 slots free at k1's ready time: it starts immediately but pays
        // the launch overhead too.
        assert_eq!(k1.start, c1.end);
        assert_eq!(
            (k1.end - k1.start).as_nanos(),
            cost_ns(50_000_000).duration(t.config()).as_nanos() + 10_000
        );
        assert_eq!(t.hidden_launches(), 0);

        // Narrow engine (1 slot): a kernel that becomes ready while the
        // slot is still busy was queued in advance — overhead hidden.
        let mut cfg = GpuConfig::titan_x();
        cfg.launch_overhead = SimDuration::from_micros(10);
        cfg.max_concurrent_kernels = 1;
        let pcie = PcieConfig {
            chunk_bw: Bandwidth::bytes_per_sec(2_000_000_000),
            stream_bw: Bandwidth::bytes_per_sec(1_000_000_000),
            p2p_bw: Bandwidth::bytes_per_sec(4_000_000_000),
            latency: SimDuration::ZERO,
        };
        let mut t = GpuTimer::new(cfg, pcie, 2);
        let c0 = t.stream_h2d(0, 1_000_000, SimTime::ZERO, "SP1");
        let k0 = t.stream_kernel(0, cost_ns(50_000_000), c0.end, "K1");
        let c1 = t.stream_h2d(1, 1_000_000, SimTime::ZERO, "SP2");
        let k1 = t.stream_kernel(1, cost_ns(50_000_000), c1.end, "K2");
        assert_eq!(k1.start, k0.end, "kernels serialise on the single slot");
        assert_eq!(
            (k1.end - k1.start).as_nanos(),
            cost_ns(50_000_000).duration(t.config()).as_nanos(),
            "queued kernel skips the launch overhead"
        );
        assert_eq!(t.hidden_launches(), 1);
        // kernel_time tracks execution work only, never launch overhead.
        assert_eq!(
            t.kernel_time().as_nanos(),
            2 * cost_ns(50_000_000).duration(t.config()).as_nanos()
        );
    }

    #[test]
    fn concurrency_caps_at_max_concurrent_kernels() {
        let mut cfg = GpuConfig::titan_x();
        cfg.max_concurrent_kernels = 2;
        cfg.launch_overhead = SimDuration::ZERO;
        let pcie = PcieConfig::gen3_x16();
        let mut t = GpuTimer::new(cfg, pcie, 4);
        let a = t.stream_kernel(0, cost_ns(1_000_000), SimTime::ZERO, "K");
        let b = t.stream_kernel(1, cost_ns(1_000_000), SimTime::ZERO, "K");
        let c = t.stream_kernel(2, cost_ns(1_000_000), SimTime::ZERO, "K");
        assert_eq!(a.start, b.start, "two kernels fit");
        assert!(c.start >= a.end, "the third waits for a slot");
    }

    #[test]
    fn more_streams_reduce_makespan() {
        // 16 pages, kernel ≈ transfer: 1 stream serialises, 4 pipeline.
        let run = |streams: usize| {
            let mut t = timer(streams);
            for j in 0..16 {
                let c = t.stream_h2d(j % streams, 1_000_000, SimTime::ZERO, "SP");
                t.stream_kernel(j % streams, cost_ns(1_000_000), c.end, "K");
            }
            t.sync()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four < one,
            "4 streams ({four:?}) must beat 1 stream ({one:?})"
        );
    }

    #[test]
    fn compute_class_costs_more_than_traversal() {
        let cfg = GpuConfig::titan_x();
        let c = KernelCost {
            class: KernelClass::Compute,
            lane_slots: 1000,
            atomic_ops: 1000,
        };
        let tr = KernelCost {
            class: KernelClass::Traversal,
            lane_slots: 1000,
            atomic_ops: 1000,
        };
        assert!(c.duration(&cfg) > tr.duration(&cfg));
    }

    #[test]
    fn stream_d2h_chains_in_program_order() {
        let mut t = timer(2);
        let k = t.stream_kernel(0, cost_ns(1_000_000), SimTime::ZERO, "K");
        let d = t.stream_d2h(0, 1_000, SimTime::ZERO, "result");
        assert!(d.start >= k.end, "write-back waits for the kernel");
        assert_eq!(t.bytes_d2h(), 1_000);
    }

    #[test]
    fn sync_covers_every_engine() {
        let mut t = timer(1);
        let a = t.chunk_h2d(1_000, SimTime::ZERO);
        let b = t.p2p_copy(1_000_000_000, a.end);
        assert_eq!(t.sync(), b.end);
    }

    #[test]
    fn statistics_accumulate() {
        let mut t = timer(2);
        t.chunk_h2d(100, SimTime::ZERO);
        t.stream_h2d(0, 50, SimTime::ZERO, "SP");
        t.chunk_d2h(25, SimTime::ZERO);
        t.stream_kernel(0, cost_ns(1000), SimTime::ZERO, "K");
        assert_eq!(t.bytes_h2d(), 150);
        assert_eq!(t.bytes_d2h(), 25);
        assert_eq!(t.kernels(), 1);
        assert!(t.kernel_time() > SimDuration::ZERO);
        assert!(t.transfer_time() > SimDuration::ZERO);
    }

    #[test]
    fn spans_record_when_telemetry_attached() {
        let mut t = timer(2);
        let tel = Telemetry::with_spans();
        t.attach_telemetry(tel.clone(), 0);
        let c = t.stream_h2d(0, 1_000, SimTime::ZERO, "SP1");
        t.stream_kernel(0, cost_ns(1_000), c.end, "K1");
        assert_eq!(tel.span_count(), 2);
        let spans = tel.spans();
        assert_eq!(spans[0].cat, SpanCat::Copy);
        assert_eq!(spans[1].cat, SpanCat::Kernel);
        assert_eq!(spans[0].track, Track::new(0, keys::tid::stream(0)));
    }

    #[test]
    fn counters_flush_into_the_registry() {
        let mut t = timer(2);
        let tel = Telemetry::new();
        t.chunk_h2d(100, SimTime::ZERO);
        let c = t.stream_h2d(0, 50, SimTime::ZERO, "SP");
        t.stream_kernel(0, cost_ns(1000), c.end, "K");
        t.flush_to(&tel, 3);
        assert_eq!(tel.counter(keys::gpu(3, keys::GPU_BYTES_H2D)), 150);
        assert_eq!(tel.counter(keys::gpu(3, keys::GPU_KERNELS)), 1);
        assert_eq!(tel.counter(keys::KERNEL_LAUNCHES), 1);
        assert_eq!(
            tel.counter(keys::gpu(3, keys::GPU_KERNEL_TIME_NS)),
            t.kernel_time().as_nanos()
        );
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _ = timer(0);
    }
}
