//! Device-memory capacity accounting.
//!
//! The defining constraint of the paper's problem statement is that *device
//! memory is small*: engines that must hold the whole graph on the GPU
//! (CuSha, MapGraph) fail with out-of-memory on large graphs, TOTEM caps
//! its GPU partition, and GTS sizes WABuf/RABuf/SPBuf/LPBuf plus an
//! optional page cache against what is left. [`DeviceMemory`] enforces that
//! constraint: allocations are RAII-tracked and over-subscription fails
//! with [`GpuOom`] exactly as `cudaMalloc` would.

use std::fmt;
use std::sync::{Arc, Mutex};

/// Out-of-device-memory error (the experiments' `O.O.M.` cells).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuOom {
    /// Bytes the failed allocation asked for.
    pub requested: u64,
    /// Bytes that were still free.
    pub available: u64,
    /// Total device capacity.
    pub capacity: u64,
    /// What the allocation was for (diagnostics, e.g. `"WABuf"`).
    pub label: &'static str,
}

impl fmt::Display for GpuOom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GPU out of memory allocating {} ({} B requested, {} B free of {} B)",
            self.label, self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for GpuOom {}

#[derive(Debug)]
struct Inner {
    capacity: u64,
    used: Mutex<u64>,
}

/// One GPU's device-memory pool.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    inner: Arc<Inner>,
}

impl DeviceMemory {
    /// A pool of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            inner: Arc::new(Inner {
                capacity,
                used: Mutex::new(0),
            }),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        *self.inner.used.lock().unwrap()
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.inner.capacity - self.used()
    }

    /// Allocate `bytes`, failing with [`GpuOom`] if they do not fit. The
    /// returned guard releases the bytes on drop.
    pub fn alloc(&self, bytes: u64, label: &'static str) -> Result<DeviceAlloc, GpuOom> {
        let mut used = self.inner.used.lock().unwrap();
        let available = self.inner.capacity - *used;
        if bytes > available {
            return Err(GpuOom {
                requested: bytes,
                available,
                capacity: self.inner.capacity,
                label,
            });
        }
        *used += bytes;
        Ok(DeviceAlloc {
            mem: self.inner.clone(),
            bytes,
            label,
        })
    }

    /// Allocate room for `len` elements of `T`. The byte count is computed
    /// in u64 so it cannot wrap on 32-bit targets (a wrapped size would
    /// defeat the OOM accounting entirely).
    pub fn alloc_array<T>(&self, len: usize, label: &'static str) -> Result<DeviceAlloc, GpuOom> {
        let bytes = (len as u64).saturating_mul(std::mem::size_of::<T>() as u64);
        self.alloc(bytes, label)
    }
}

/// RAII guard for a device-memory allocation.
#[derive(Debug)]
pub struct DeviceAlloc {
    mem: Arc<Inner>,
    bytes: u64,
    label: &'static str,
}

impl DeviceAlloc {
    /// Size of this allocation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Diagnostic label.
    pub fn label(&self) -> &'static str {
        self.label
    }
}

impl Drop for DeviceAlloc {
    fn drop(&mut self) {
        *self.mem.used.lock().unwrap() -= self.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release() {
        let mem = DeviceMemory::new(1000);
        let a = mem.alloc(400, "WABuf").unwrap();
        assert_eq!(mem.used(), 400);
        assert_eq!(mem.free(), 600);
        let b = mem.alloc(600, "SPBuf").unwrap();
        assert_eq!(mem.free(), 0);
        drop(a);
        assert_eq!(mem.free(), 400);
        drop(b);
        assert_eq!(mem.used(), 0);
    }

    #[test]
    fn oversubscription_fails_with_diagnostics() {
        let mem = DeviceMemory::new(1000);
        let _a = mem.alloc(900, "WABuf").unwrap();
        let err = mem.alloc(200, "cache").unwrap_err();
        assert_eq!(err.requested, 200);
        assert_eq!(err.available, 100);
        assert_eq!(err.capacity, 1000);
        assert_eq!(err.label, "cache");
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn failed_alloc_leaves_accounting_unchanged() {
        let mem = DeviceMemory::new(100);
        assert!(mem.alloc(101, "x").is_err());
        assert_eq!(mem.used(), 0);
    }

    #[test]
    fn array_helper_multiplies_by_element_size() {
        let mem = DeviceMemory::new(1024);
        let a = mem.alloc_array::<u32>(100, "LV").unwrap();
        assert_eq!(a.bytes(), 400);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mem = DeviceMemory::new(64);
        let a = mem.alloc(64, "all").unwrap();
        assert_eq!(mem.free(), 0);
        drop(a);
        assert_eq!(mem.free(), 64);
    }
}
