//! GPU and PCI-E configuration.
//!
//! Defaults model the paper's testbed (GTX TITAN X, PCI-E 3.0 x16); the
//! experiments scale capacities down with [`GpuConfig::scaled`] so that the
//! paper's regime boundaries (graph fits in device memory / fits in main
//! memory / must stream from SSD) land inside the reduced-scale sweeps.

use gts_sim::{Bandwidth, SimDuration};

/// Characteristics of one simulated GPU.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Device memory capacity in bytes (TITAN X: 12 GiB).
    pub device_memory: u64,
    /// Maximum kernels in flight (CUDA limit the paper cites: 32).
    pub max_concurrent_kernels: usize,
    /// Fixed driver overhead per kernel launch that is *not* hidden when
    /// the compute engine sits idle waiting for this kernel's data
    /// (Sec. 3.2's "kernel execution becomes faster when SPj and RAj are
    /// prepared in the queues of GPU in advance").
    pub launch_overhead: SimDuration,
    /// Nanoseconds per warp-lane slot for traversal-class kernels
    /// (memory-bound, non-coalesced: BFS, SSSP, CC, BC).
    pub traversal_slot_ns: f64,
    /// Nanoseconds per warp-lane slot for compute-class kernels
    /// (arithmetic-heavy: PageRank, RWR).
    pub compute_slot_ns: f64,
    /// Nanoseconds per atomic update for traversal kernels (atomicMin/CAS).
    pub traversal_atomic_ns: f64,
    /// Nanoseconds per atomic update for compute kernels (f32 atomicAdd,
    /// including power-law contention).
    pub compute_atomic_ns: f64,
}

impl GpuConfig {
    /// The paper's GTX TITAN X.
    pub fn titan_x() -> Self {
        GpuConfig {
            device_memory: 12 * (1 << 30),
            max_concurrent_kernels: 32,
            launch_overhead: SimDuration::from_micros(8),
            // Calibrated so that, with 32 concurrent kernels, one streamed
            // 64 KiB page's PageRank kernel runs ~10-20x its transfer time
            // (Table 1) while ten RMAT-sweep iterations stay
            // transfer-bound at ~c2 (the Sec. 7.5 arithmetic), and BFS
            // kernels land near parity with transfers.
            traversal_slot_ns: 1.2,
            compute_slot_ns: 6.0,
            traversal_atomic_ns: 2.0,
            compute_atomic_ns: 9.0,
        }
    }

    /// Scale device memory by `1/div`, keeping per-unit costs. Used to run
    /// the paper's capacity regimes at reduced graph scale.
    pub fn scaled(div: u64) -> Self {
        let mut c = Self::titan_x();
        c.device_memory /= div.max(1);
        c
    }

    /// Override device memory (bytes).
    pub fn with_device_memory(mut self, bytes: u64) -> Self {
        self.device_memory = bytes;
        self
    }
}

/// Characteristics of the PCI-E link between host memory and one GPU.
#[derive(Debug, Clone)]
pub struct PcieConfig {
    /// Chunk (pinned, large) copy rate — the paper's `c1` ≈ 16 GB/s.
    pub chunk_bw: Bandwidth,
    /// Streaming copy rate — the paper's `c2` ≈ 6 GB/s.
    pub stream_bw: Bandwidth,
    /// Peer-to-peer copy rate between GPUs (faster than via host).
    pub p2p_bw: Bandwidth,
    /// Per-transfer setup latency.
    pub latency: SimDuration,
}

impl PcieConfig {
    /// PCI-E 3.0 x16 with the paper's observed rates (Sec. 5.1).
    pub fn gen3_x16() -> Self {
        PcieConfig {
            chunk_bw: Bandwidth::gib_per_sec(16),
            stream_bw: Bandwidth::gib_per_sec(6),
            p2p_bw: Bandwidth::gib_per_sec(10),
            latency: SimDuration::from_micros(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_defaults_match_paper_facts() {
        let g = GpuConfig::titan_x();
        assert_eq!(g.device_memory, 12 << 30);
        assert_eq!(g.max_concurrent_kernels, 32);
        let p = PcieConfig::gen3_x16();
        // c1 > c2: chunk copies are faster than streamed copies (Sec. 5.1).
        assert!(p.chunk_bw > p.stream_bw);
    }

    #[test]
    fn compute_kernels_cost_more_per_edge_than_traversal() {
        // Table 1's premise: PageRank is computationally intensive, BFS not.
        let g = GpuConfig::titan_x();
        assert!(g.compute_slot_ns > g.traversal_slot_ns);
        assert!(g.compute_atomic_ns > g.traversal_atomic_ns);
    }

    #[test]
    fn scaling_divides_memory_only() {
        let g = GpuConfig::scaled(64);
        assert_eq!(g.device_memory, (12u64 << 30) / 64);
        assert_eq!(g.max_concurrent_kernels, 32);
    }
}
