//! Warp-level work model: micro-level parallel processing techniques.
//!
//! Sec. 6.2 / Appendix E of the paper distinguish three ways a kernel can
//! map a slotted page onto GPU threads:
//!
//! * **Edge-centric (VWC)** — the threads of a (virtual) warp process one
//!   vertex's out-edges together. Cost per vertex: its adjacency list
//!   rounded up to whole warps — idle lanes on the last chunk waste ALUs,
//!   which hurts very sparse pages.
//! * **Vertex-centric** — each thread owns a whole vertex. Threads in a
//!   warp execute in lock-step, so a warp takes as long as its
//!   *highest-degree* member — workload imbalance hurts skewed pages.
//! * **Hybrid** — pick per page whichever of the two is cheaper, using the
//!   page's density (Sec. 6.2: "the kernel can apply a better/different
//!   technique to each page depending on the characteristics of the page").
//!
//! The unit produced here is a **lane-slot**: one SIMD lane occupied for
//! one edge-step (including forced-idle lanes). [`timer::KernelCost`]
//! converts lane-slots to simulated time.

/// Hardware warp width (CUDA: 32 lanes).
pub const WARP_WIDTH: u32 = 32;

/// Which micro-level technique a kernel uses (Appendix E's sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroTechnique {
    /// VWC edge-centric with the given virtual-warp width (the paper's
    /// default technique; virtual warps of 4/8/16/32 partition a physical
    /// warp).
    EdgeCentric {
        /// Virtual warp width in lanes (must divide [`WARP_WIDTH`]).
        virtual_warp: u32,
    },
    /// One thread per vertex.
    VertexCentric,
    /// Per-page choice of the cheaper of the two.
    Hybrid {
        /// Virtual warp width used when the edge-centric side is picked.
        virtual_warp: u32,
    },
}

impl MicroTechnique {
    /// The paper's default: VWC with 32-lane virtual warps.
    pub fn default_edge_centric() -> Self {
        MicroTechnique::EdgeCentric { virtual_warp: 32 }
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            MicroTechnique::EdgeCentric { .. } => "edge-centric",
            MicroTechnique::VertexCentric => "vertex-centric",
            MicroTechnique::Hybrid { .. } => "hybrid",
        }
    }

    /// Lane-slots to process vertices with the given out-degrees under this
    /// technique. `degrees` holds only the *active* vertices of the page
    /// (for BFS-like kernels, the frontier members; for PageRank-like, all).
    pub fn lane_slots(&self, degrees: &[u32]) -> u64 {
        match *self {
            MicroTechnique::EdgeCentric { virtual_warp } => {
                edge_centric_slots(degrees, virtual_warp)
            }
            MicroTechnique::VertexCentric => vertex_centric_slots(degrees),
            MicroTechnique::Hybrid { virtual_warp } => {
                edge_centric_slots(degrees, virtual_warp).min(vertex_centric_slots(degrees))
            }
        }
    }
}

/// Edge-centric (VWC): each vertex's adjacency list is processed
/// `virtual_warp` lanes at a time; the last chunk pads with idle lanes.
///
/// # Panics
/// Panics unless `virtual_warp` is a divisor of [`WARP_WIDTH`] (the VWC
/// paper partitions physical warps into 4/8/16/32-lane virtual warps).
pub fn edge_centric_slots(degrees: &[u32], virtual_warp: u32) -> u64 {
    assert!(
        virtual_warp > 0 && WARP_WIDTH.is_multiple_of(virtual_warp),
        "virtual warp {virtual_warp} must divide {WARP_WIDTH}"
    );
    degrees
        .iter()
        .map(|&d| (d as u64).div_ceil(virtual_warp as u64) * virtual_warp as u64)
        .sum()
}

/// Vertex-centric: one thread per vertex; each group of [`WARP_WIDTH`]
/// consecutive vertices runs in lock-step, so the whole warp pays the
/// group's maximum degree on every lane.
pub fn vertex_centric_slots(degrees: &[u32]) -> u64 {
    degrees
        .chunks(WARP_WIDTH as usize)
        .map(|chunk| {
            // A partial final warp still locks all WARP_WIDTH lanes for the
            // group's maximum — the unfilled lanes are forced idle, and the
            // lane-slot unit counts idle lanes by definition.
            let max = chunk.iter().copied().max().unwrap_or(0) as u64;
            max * WARP_WIDTH as u64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_centric_rounds_up_to_virtual_warps() {
        // deg 33 with 32-lane warps: two warp passes = 64 slots.
        assert_eq!(edge_centric_slots(&[33], 32), 64);
        // deg 1 still burns a whole virtual warp.
        assert_eq!(edge_centric_slots(&[1], 32), 32);
        assert_eq!(edge_centric_slots(&[1], 4), 4);
        assert_eq!(edge_centric_slots(&[0], 32), 0);
    }

    #[test]
    fn vertex_centric_pays_group_maximum() {
        // 32 vertices, one has degree 100, rest 1: the whole warp waits.
        let mut degs = vec![1u32; 32];
        degs[7] = 100;
        assert_eq!(vertex_centric_slots(&degs), 100 * 32);
        // Uniform degree-4 warp costs exactly the edges.
        assert_eq!(vertex_centric_slots(&[4; 32]), 4 * 32);
    }

    #[test]
    fn sparse_uniform_pages_favour_vertex_centric() {
        // Degree-2 vertices under 32-lane VWC waste 30 lanes each.
        let degs = vec![2u32; 64];
        let ec = edge_centric_slots(&degs, 32);
        let vc = vertex_centric_slots(&degs);
        assert!(vc < ec, "vc {vc} must beat ec {ec} on sparse uniform pages");
    }

    #[test]
    fn skewed_pages_favour_edge_centric() {
        // A hub with 10k edges among degree-2 vertices stalls whole warps
        // under vertex-centric.
        let mut degs = vec![2u32; 63];
        degs.push(10_000);
        let ec = edge_centric_slots(&degs, 32);
        let vc = vertex_centric_slots(&degs);
        assert!(ec < vc, "ec {ec} must beat vc {vc} on skewed pages");
    }

    #[test]
    fn hybrid_takes_the_minimum() {
        let sparse = vec![2u32; 64];
        let mut skewed = vec![2u32; 63];
        skewed.push(10_000);
        let hybrid = MicroTechnique::Hybrid { virtual_warp: 32 };
        assert_eq!(hybrid.lane_slots(&sparse), vertex_centric_slots(&sparse));
        assert_eq!(hybrid.lane_slots(&skewed), edge_centric_slots(&skewed, 32));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn invalid_virtual_warp_rejected() {
        let _ = edge_centric_slots(&[1], 5);
    }

    #[test]
    fn names_for_tables() {
        assert_eq!(
            MicroTechnique::default_edge_centric().name(),
            "edge-centric"
        );
        assert_eq!(MicroTechnique::VertexCentric.name(), "vertex-centric");
        assert_eq!(MicroTechnique::Hybrid { virtual_warp: 8 }.name(), "hybrid");
    }
}
