#![warn(missing_docs)]

//! # gts-gpu — a functional + timed GPU simulator
//!
//! The paper runs on NVIDIA GTX TITAN X GPUs over PCI-E 3.0 x16 and builds
//! its entire design around CUDA facts: device memory is small (12 GB),
//! asynchronous streams let transfers overlap kernel execution, at most 32
//! kernels run concurrently, chunk copies move at ~16 GB/s (`c1`) while
//! streamed copies reach ~6 GB/s (`c2`), and peer-to-peer copies between
//! GPUs beat round-trips through host memory.
//!
//! No GPU is available in this environment, so this crate substitutes a
//! simulator with two layers:
//!
//! * **Functional**: kernels are plain Rust closures executed by the engine
//!   over device-resident buffers guarded by [`memory::DeviceAlloc`]
//!   capacity accounting — results are bit-accurate and allocation beyond
//!   device capacity fails with [`memory::GpuOom`], exactly like
//!   `cudaMalloc`.
//! * **Timed**: every copy and kernel launch is scheduled on FIFO engines
//!   ([`timer::GpuTimer`]): one H2D copy engine, one D2H copy engine, a
//!   compute engine, and per-stream ordering chains — reproducing the
//!   overlap/pipelining behaviour the paper's Figures 3, 4 and 10 measure.
//!   Kernel durations come from the warp-level work model in [`warp`],
//!   driven by the *actual* per-page work the functional layer observed.
//!
//! See `DESIGN.md` §1 for why this substitution preserves the behaviour the
//! paper's experiments exercise.
//!
//! ```
//! use gts_gpu::{DeviceMemory, GpuConfig, GpuTimer, PcieConfig};
//! use gts_gpu::timer::{KernelClass, KernelCost};
//! use gts_sim::SimTime;
//!
//! // Capacity-accounted allocation, like cudaMalloc.
//! let mem = DeviceMemory::new(1 << 20);
//! let wa = mem.alloc(512 * 1024, "WABuf").unwrap();
//! assert!(mem.alloc(1 << 20, "too big").is_err());
//! drop(wa);
//!
//! // Stream a copy and a kernel; the kernel starts after its data lands.
//! let mut gpu = GpuTimer::new(GpuConfig::titan_x(), PcieConfig::gen3_x16(), 16);
//! let copy = gpu.stream_h2d(0, 64 * 1024, SimTime::ZERO, "SP0");
//! let cost = KernelCost { class: KernelClass::Traversal, lane_slots: 10_000, atomic_ops: 100 };
//! let kernel = gpu.stream_kernel(0, cost, copy.end, "K_BFS");
//! assert!(kernel.start >= copy.end);
//! ```

pub mod config;
pub mod memory;
pub mod timer;
pub mod warp;

pub use config::{GpuConfig, PcieConfig};
pub use memory::{DeviceAlloc, DeviceMemory, GpuOom};
pub use timer::{GpuTimer, KernelClass, KernelCost};
pub use warp::MicroTechnique;
