//! GPU-memory-only engines: CuSha and MapGraph (Fig. 8).
//!
//! Both "can process only the graph data that can fit in GPU memory"
//! (Sec. 7.4). When the graph fits they are fast — no PCI-E streaming at
//! all — but their device-resident formats differ in space efficiency,
//! which is why MapGraph OOMs before CuSha ("the Market Matrix format of
//! MapGraph is less space-efficient than the G-Shard format of CuSha").

use crate::propagation::{self, place, PropagationTrace};
use crate::report::{finish_run, record_sweep, values_to_u32, BaselineError, RunReport};
use gts_core::sweep::GpuLane;
use gts_gpu::timer::{GpuTimer, KernelClass, KernelCost};
use gts_gpu::{GpuConfig, PcieConfig};
use gts_graph::Csr;
use gts_sim::SimTime;
use gts_telemetry::Telemetry;

/// Space/speed profile of a GPU-resident format.
#[derive(Debug, Clone)]
pub struct GpuOnlyProfile {
    /// Engine name.
    pub name: &'static str,
    /// Device bytes per edge of the resident topology format.
    pub bytes_per_edge: u64,
    /// Extra device bytes per edge that PageRank needs (CuSha's G-Shards
    /// carry per-edge values; this is why "CuSha cannot process PageRank
    /// for all graphs tested" while its BFS fits Twitter).
    pub pagerank_edge_value_bytes: u64,
    /// Device bytes per vertex (index structures).
    pub bytes_per_vertex: u64,
    /// Kernel-time multiplier relative to the GTS kernel cost model
    /// (CuSha's shards give coalesced access → < 1 is not claimed; the
    /// paper found CuSha *slower* than GTS, so ≥ 1).
    pub kernel_multiplier: f64,
}

impl GpuOnlyProfile {
    /// CuSha (G-Shards): src + dst + value per shard entry.
    pub fn cusha() -> Self {
        GpuOnlyProfile {
            name: "CuSha",
            bytes_per_edge: 8,
            pagerank_edge_value_bytes: 8,
            bytes_per_vertex: 8,
            kernel_multiplier: 1.6,
        }
    }

    /// MapGraph (Market Matrix ingestion): least space-efficient.
    pub fn mapgraph() -> Self {
        GpuOnlyProfile {
            name: "MapGraph",
            bytes_per_edge: 24,
            pagerank_edge_value_bytes: 8,
            bytes_per_vertex: 12,
            kernel_multiplier: 1.9,
        }
    }
}

/// A GPU-memory-only engine.
#[derive(Debug, Clone)]
pub struct GpuOnlyEngine {
    /// Format/speed profile.
    pub profile: GpuOnlyProfile,
    /// GPU model.
    pub gpu: GpuConfig,
    telemetry: Telemetry,
}

impl GpuOnlyEngine {
    /// Create an engine.
    pub fn new(profile: GpuOnlyProfile, gpu: GpuConfig) -> Self {
        GpuOnlyEngine {
            profile,
            gpu,
            telemetry: Telemetry::new(),
        }
    }

    /// Record runs into `tel` instead of a private handle.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// The engine's telemetry handle (counters of the last run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Device bytes needed for `g` plus `wa_bytes_per_vertex` of state and
    /// `edge_value_bytes` of per-edge values.
    pub fn memory_needed(&self, g: &Csr, wa_bytes_per_vertex: u64) -> u64 {
        self.memory_needed_with_values(g, wa_bytes_per_vertex, 0)
    }

    /// Memory accounting including per-edge value storage.
    pub fn memory_needed_with_values(
        &self,
        g: &Csr,
        wa_bytes_per_vertex: u64,
        edge_value_bytes: u64,
    ) -> u64 {
        g.num_edges() as u64 * (self.profile.bytes_per_edge + edge_value_bytes)
            + g.num_vertices() as u64 * (self.profile.bytes_per_vertex + wa_bytes_per_vertex)
    }

    /// BFS from `source` (WA: 2-byte levels).
    pub fn run_bfs(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        self.check(g, 2, 0)?;
        let trace =
            propagation::min_propagation(g, Some(source), |_, _, x| x + 1.0, place::single(), 1);
        let run = self.account(g, &trace, "BFS", KernelClass::Traversal, 2);
        Ok((values_to_u32(&trace.values), run))
    }

    /// PageRank (WA: prevPR + nextPR both resident — 8 bytes/vertex, the
    /// reason "CuSha cannot process PageRank for all graphs tested").
    pub fn run_pagerank(
        &self,
        g: &Csr,
        iterations: u32,
    ) -> Result<(Vec<f64>, RunReport), BaselineError> {
        self.check(g, 8, self.profile.pagerank_edge_value_bytes)?;
        let trace = propagation::pagerank_propagation(g, 0.85, iterations, place::single(), 1);
        let run = self.account(g, &trace, "PageRank", KernelClass::Compute, 8);
        Ok((trace.values.clone(), run))
    }

    fn check(&self, g: &Csr, wa_bpv: u64, edge_value_bytes: u64) -> Result<(), BaselineError> {
        let needed = self.memory_needed_with_values(g, wa_bpv, edge_value_bytes);
        if needed > self.gpu.device_memory {
            return Err(BaselineError::OutOfMemory {
                engine: self.profile.name.to_string(),
                needed,
                available: self.gpu.device_memory,
            });
        }
        Ok(())
    }

    fn account(
        &self,
        g: &Csr,
        trace: &PropagationTrace,
        algorithm: &str,
        class: KernelClass,
        wa_bpv: u64,
    ) -> RunReport {
        self.telemetry.start_run();
        // One uncached lane, one stream: each superstep is a single
        // whole-graph kernel with its inputs already resident — no PCI-E
        // streaming at all, the defining property of these engines. The
        // format's slower memory access shows up as extra lane-slots per
        // edge (`kernel_multiplier`); launch overhead comes from the lane's
        // timer, which never hides it because the kernels are sequential.
        let mut lane =
            GpuLane::uncached(GpuTimer::new(self.gpu.clone(), PcieConfig::gen3_x16(), 1));
        let mut t = SimTime::ZERO;
        for (j, sweep) in trace.sweeps.iter().enumerate() {
            let edges = sweep.total_edges();
            let cost = KernelCost {
                class,
                lane_slots: (edges as f64 * self.profile.kernel_multiplier).round() as u64,
                atomic_ops: 0,
            };
            let k = lane
                .issue_kernel(cost, t, self.profile.name)
                .expect("baselines run without fault injection");
            record_sweep(
                &self.telemetry,
                j as u32,
                sweep.total_active(),
                edges,
                k.end - t,
            );
            t = k.end;
        }
        finish_run(
            &self.telemetry,
            self.profile.name,
            algorithm,
            lane.sync() - SimTime::ZERO,
            trace.sweeps.len() as u32,
            0,
            self.memory_needed(g, wa_bpv),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::generate::rmat;
    use gts_graph::reference;

    fn small() -> Csr {
        Csr::from_edge_list(&rmat(8))
    }

    #[test]
    fn bfs_and_pagerank_match_reference() {
        let g = small();
        let e = GpuOnlyEngine::new(GpuOnlyProfile::cusha(), GpuConfig::titan_x());
        assert_eq!(e.run_bfs(&g, 0).unwrap().0, reference::bfs(&g, 0));
        let (pr, _) = e.run_pagerank(&g, 4).unwrap();
        for (a, b) in pr.iter().zip(&reference::pagerank(&g, 0.85, 4)) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mapgraph_ooms_before_cusha() {
        // Sec. 7.4: MapGraph's format is less space-efficient.
        let g = small();
        let cusha = GpuOnlyEngine::new(GpuOnlyProfile::cusha(), GpuConfig::titan_x());
        let mapgraph = GpuOnlyEngine::new(GpuOnlyProfile::mapgraph(), GpuConfig::titan_x());
        let boundary = cusha.memory_needed(&g, 2);
        let gpu = GpuConfig::titan_x().with_device_memory(boundary);
        assert!(GpuOnlyEngine::new(GpuOnlyProfile::cusha(), gpu.clone())
            .run_bfs(&g, 0)
            .is_ok());
        assert!(matches!(
            GpuOnlyEngine::new(GpuOnlyProfile::mapgraph(), gpu).run_bfs(&g, 0),
            Err(BaselineError::OutOfMemory { .. })
        ));
        assert!(mapgraph.memory_needed(&g, 2) > cusha.memory_needed(&g, 2));
    }

    #[test]
    fn pagerank_needs_more_memory_than_bfs() {
        let g = small();
        let e = GpuOnlyEngine::new(GpuOnlyProfile::cusha(), GpuConfig::titan_x());
        assert!(e.memory_needed(&g, 8) > e.memory_needed(&g, 2));
        // A device sized for BFS only must OOM on PageRank.
        let gpu = GpuConfig::titan_x().with_device_memory(e.memory_needed(&g, 2));
        let tight = GpuOnlyEngine::new(GpuOnlyProfile::cusha(), gpu);
        assert!(tight.run_bfs(&g, 0).is_ok());
        assert!(tight.run_pagerank(&g, 1).is_err());
    }
}
