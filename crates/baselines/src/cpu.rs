//! Shared-memory CPU engines (the paper's Fig. 7 comparators).
//!
//! One engine, four profiles:
//!
//! * **Ligra** — frontier-based with sparse(push)/dense(pull) direction
//!   switching; needs CSR *and* its transpose in memory.
//! * **Ligra+** — Ligra with compressed adjacency (smaller footprint,
//!   slight per-edge decode cost).
//! * **Galois** — fast native work-item scheduler; frontier-based, CSR only.
//! * **MTGL** — the multithreaded graph library baseline: no frontier
//!   optimisation, every sweep scans all vertices ("Galois, Ligra and
//!   Ligra+ have significantly outperformed MTGL", Sec. 7.3).
//!
//! All four must hold the whole graph in host memory — which is exactly
//! why the paper's Fig. 7 has no CPU bars for RMAT29+ ("the CPU-based
//! methods cannot load data into main memory").

use crate::propagation::{self, place, PropagationTrace};
use crate::report::{finish_run, record_sweep, values_to_u32, BaselineError, RunReport};
use gts_graph::{Csr, EdgeList};
use gts_sim::{SimDuration, SimTime};
use gts_telemetry::Telemetry;

/// Cost/architecture profile of one CPU engine.
#[derive(Debug, Clone)]
pub struct CpuProfile {
    /// Engine name.
    pub name: &'static str,
    /// Nanoseconds per edge on one core.
    pub per_edge_ns: f64,
    /// Nanoseconds per scanned vertex on one core.
    pub per_vertex_ns: f64,
    /// Whether the engine only touches frontier vertices (Ligra/Galois) or
    /// scans everything each sweep (MTGL).
    pub frontier_based: bool,
    /// Whether the dense direction needs the transposed graph resident.
    pub needs_transpose: bool,
    /// Bytes per edge of the in-memory representation.
    pub memory_bytes_per_edge: u64,
    /// Per-sweep scheduling overhead.
    pub sweep_overhead: SimDuration,
}

impl CpuProfile {
    /// Ligra (Shun & Blelloch).
    ///
    /// Constants calibrated against the paper's Fig. 7: on Twitter-class
    /// graphs Ligra's BFS lands within ~2x of GTS (either may win
    /// slightly) while its PageRank trails GTS by ~4-5x.
    pub fn ligra() -> Self {
        CpuProfile {
            name: "Ligra",
            per_edge_ns: 30.0,
            per_vertex_ns: 4.0,
            frontier_based: true,
            needs_transpose: true,
            memory_bytes_per_edge: 8,
            sweep_overhead: SimDuration::from_micros(120),
        }
    }

    /// Ligra+ (compressed graphs: ~half the memory, ~15 % decode cost).
    pub fn ligra_plus() -> Self {
        CpuProfile {
            name: "Ligra+",
            per_edge_ns: 34.0,
            per_vertex_ns: 4.0,
            frontier_based: true,
            needs_transpose: true,
            memory_bytes_per_edge: 4,
            sweep_overhead: SimDuration::from_micros(120),
        }
    }

    /// Galois (Nguyen et al.).
    pub fn galois() -> Self {
        CpuProfile {
            name: "Galois",
            per_edge_ns: 32.0,
            per_vertex_ns: 6.0,
            frontier_based: true,
            needs_transpose: false,
            memory_bytes_per_edge: 8,
            sweep_overhead: SimDuration::from_micros(250),
        }
    }

    /// MTGL (Barrett et al.) — no frontier optimisation.
    pub fn mtgl() -> Self {
        CpuProfile {
            name: "MTGL",
            per_edge_ns: 110.0,
            per_vertex_ns: 20.0,
            frontier_based: false,
            needs_transpose: false,
            memory_bytes_per_edge: 16,
            sweep_overhead: SimDuration::from_millis(1),
        }
    }
}

/// A shared-memory CPU engine on the paper's workstation (two 8-core
/// Xeons, 16 threads with HT off, 128 GB of memory — Sec. 7.1).
#[derive(Debug, Clone)]
pub struct CpuEngine {
    /// Cost profile.
    pub profile: CpuProfile,
    /// Worker threads of the *simulated* machine (the paper fixes 16);
    /// feeds the cost model only.
    pub threads: u32,
    /// Host memory in bytes.
    pub host_memory: u64,
    /// Real threads used to execute the functional propagation on *this*
    /// machine. Never changes results or simulated time — see
    /// [`propagation::min_propagation_threads`].
    pub host_threads: usize,
    telemetry: Telemetry,
}

impl CpuEngine {
    /// An engine with the paper's workstation parameters.
    pub fn new(profile: CpuProfile) -> Self {
        CpuEngine {
            profile,
            threads: 16,
            host_memory: 128 << 30,
            host_threads: gts_exec::default_host_threads(),
            telemetry: Telemetry::new(),
        }
    }

    /// Set the real execution thread count (`1` = the serial reference
    /// path; every value produces identical traces and reports).
    pub fn with_host_threads(mut self, host_threads: usize) -> Self {
        self.host_threads = host_threads.max(1);
        self
    }

    /// Record runs into `tel` instead of a private handle.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// The engine's telemetry handle (counters of the last run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Scale host memory by `1/div` (regime scaling, DESIGN.md §1).
    pub fn with_scaled_memory(mut self, div: u64) -> Self {
        self.host_memory = (128u64 << 30) / div.max(1);
        self
    }

    /// BFS from `source`.
    pub fn run_bfs(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        self.check_memory(g)?;
        let trace = propagation::min_propagation_threads(
            g,
            Some(source),
            |_, _, x| x + 1.0,
            place::single(),
            1,
            self.host_threads,
        );
        let run = self.account(g, &trace, "BFS");
        Ok((values_to_u32(&trace.values), run))
    }

    /// SSSP from `source`.
    pub fn run_sssp(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        self.check_memory(g)?;
        let trace = propagation::min_propagation_threads(
            g,
            Some(source),
            |v, w, x| x + EdgeList::edge_weight(v, w) as f64,
            place::single(),
            1,
            self.host_threads,
        );
        let run = self.account(g, &trace, "SSSP");
        Ok((values_to_u32(&trace.values), run))
    }

    /// Weakly connected components.
    pub fn run_cc(&self, g: &Csr) -> Result<(Vec<u32>, RunReport), BaselineError> {
        self.check_memory(g)?;
        let sym = g.symmetrize();
        let trace = propagation::min_propagation_threads(
            &sym,
            None,
            |_, _, x| x,
            place::single(),
            1,
            self.host_threads,
        );
        let run = self.account(&sym, &trace, "CC");
        Ok((values_to_u32(&trace.values), run))
    }

    /// PageRank for `iterations` sweeps.
    pub fn run_pagerank(
        &self,
        g: &Csr,
        iterations: u32,
    ) -> Result<(Vec<f64>, RunReport), BaselineError> {
        self.check_memory(g)?;
        let trace = propagation::pagerank_propagation(g, 0.85, iterations, place::single(), 1);
        let run = self.account(g, &trace, "PageRank");
        Ok((trace.values.clone(), run))
    }

    /// Bytes the engine needs resident for `g`.
    pub fn memory_needed(&self, g: &Csr) -> u64 {
        let direction_copies = if self.profile.needs_transpose { 2 } else { 1 };
        g.num_edges() as u64 * self.profile.memory_bytes_per_edge * direction_copies
            + g.num_vertices() as u64 * 16
    }

    fn check_memory(&self, g: &Csr) -> Result<(), BaselineError> {
        let needed = self.memory_needed(g);
        if needed > self.host_memory {
            return Err(BaselineError::OutOfMemory {
                engine: self.profile.name.to_string(),
                needed,
                available: self.host_memory,
            });
        }
        Ok(())
    }

    fn account(&self, g: &Csr, trace: &PropagationTrace, algorithm: &str) -> RunReport {
        let p = &self.profile;
        self.telemetry.start_run();
        let mut t = SimTime::ZERO;
        for (j, sweep) in trace.sweeps.iter().enumerate() {
            let load = &sweep.nodes[0];
            let (vertices, edges) = if p.frontier_based {
                (load.active_vertices, load.edges)
            } else {
                // MTGL-style: every sweep visits everything.
                (g.num_vertices() as u64, g.num_edges() as u64)
            };
            let work_ns = edges as f64 * p.per_edge_ns + vertices as f64 * p.per_vertex_ns;
            let step =
                SimDuration::from_secs_f64(work_ns / self.threads as f64 / 1e9) + p.sweep_overhead;
            record_sweep(&self.telemetry, j as u32, vertices, edges, step);
            t += step;
        }
        finish_run(
            &self.telemetry,
            p.name,
            algorithm,
            t - SimTime::ZERO,
            trace.sweeps.len() as u32,
            0,
            self.memory_needed(g),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::generate::rmat;
    use gts_graph::reference;

    fn small() -> Csr {
        Csr::from_edge_list(&rmat(8))
    }

    #[test]
    fn all_profiles_match_reference_bfs() {
        let g = small();
        let want = reference::bfs(&g, 0);
        for p in [
            CpuProfile::ligra(),
            CpuProfile::ligra_plus(),
            CpuProfile::galois(),
            CpuProfile::mtgl(),
        ] {
            let (levels, _) = CpuEngine::new(p).run_bfs(&g, 0).unwrap();
            assert_eq!(levels, want);
        }
    }

    #[test]
    fn pagerank_and_cc_and_sssp_match_reference() {
        let g = small();
        let e = CpuEngine::new(CpuProfile::ligra());
        let (pr, _) = e.run_pagerank(&g, 4).unwrap();
        for (a, b) in pr.iter().zip(&reference::pagerank(&g, 0.85, 4)) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(e.run_cc(&g).unwrap().0, reference::connected_components(&g));
        assert_eq!(e.run_sssp(&g, 0).unwrap().0, reference::sssp(&g, 0));
    }

    #[test]
    fn mtgl_is_much_slower_than_ligra() {
        // Fig. 7's headline: frontier engines dominate MTGL.
        let g = small();
        let ligra = CpuEngine::new(CpuProfile::ligra())
            .run_bfs(&g, 0)
            .unwrap()
            .1
            .elapsed;
        let mtgl = CpuEngine::new(CpuProfile::mtgl())
            .run_bfs(&g, 0)
            .unwrap()
            .1
            .elapsed;
        assert!(mtgl > ligra * 3);
    }

    #[test]
    fn ligra_plus_fits_where_ligra_ooms() {
        // Compression halves the footprint — the reason Ligra+ exists.
        let g = small();
        let needed_ligra = CpuEngine::new(CpuProfile::ligra()).memory_needed(&g);
        let mut ligra = CpuEngine::new(CpuProfile::ligra());
        ligra.host_memory = needed_ligra - 1;
        let mut plus = CpuEngine::new(CpuProfile::ligra_plus());
        plus.host_memory = needed_ligra - 1;
        assert!(matches!(
            ligra.run_bfs(&g, 0),
            Err(BaselineError::OutOfMemory { .. })
        ));
        assert!(plus.run_bfs(&g, 0).is_ok());
    }

    #[test]
    fn oom_names_engine() {
        let g = small();
        let mut e = CpuEngine::new(CpuProfile::galois());
        e.host_memory = 16;
        match e.run_pagerank(&g, 1) {
            Err(BaselineError::OutOfMemory { engine, .. }) => assert_eq!(engine, "Galois"),
            other => panic!("expected OOM, got {other:?}"),
        }
    }
}
