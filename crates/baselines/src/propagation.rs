//! Shared functional drivers for the baseline engines.
//!
//! Every baseline in the paper's evaluation runs one of two iteration
//! shapes: *min-propagation* (BFS, SSSP, CC — a value spreads along edges
//! and targets keep the minimum) or *sum-propagation* (PageRank). The
//! engines differ in **where** the work happens and **what it costs**, not
//! in the algorithm itself. This module executes the algorithm once,
//! partitioned by an engine-supplied placement function, and records a
//! per-sweep, per-partition load trace; each engine turns that trace into
//! simulated time and memory checks under its own architecture model.

/// Work observed on one partition (cluster node, CPU/GPU side, …) during
/// one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Vertices that computed.
    pub active_vertices: u64,
    /// Out-edges they processed.
    pub edges: u64,
    /// Messages arriving at this partition.
    pub msgs_in: u64,
    /// Messages arriving from *other* partitions (network traffic).
    pub remote_msgs_in: u64,
}

/// Loads of all partitions for one sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepLoads {
    /// One entry per partition.
    pub nodes: Vec<NodeLoad>,
}

impl SweepLoads {
    fn new(n: usize) -> Self {
        SweepLoads {
            nodes: vec![NodeLoad::default(); n],
        }
    }

    /// Total edges processed this sweep.
    pub fn total_edges(&self) -> u64 {
        self.nodes.iter().map(|n| n.edges).sum()
    }

    /// Total active vertices this sweep.
    pub fn total_active(&self) -> u64 {
        self.nodes.iter().map(|n| n.active_vertices).sum()
    }

    /// Total remote messages this sweep.
    pub fn total_remote_msgs(&self) -> u64 {
        self.nodes.iter().map(|n| n.remote_msgs_in).sum()
    }

    /// The most loaded partition's edge count (stragglers gate BSP).
    pub fn max_edges(&self) -> u64 {
        self.nodes.iter().map(|n| n.edges).max().unwrap_or(0)
    }
}

/// Full execution trace: the final per-vertex values plus per-sweep loads.
#[derive(Debug, Clone)]
pub struct PropagationTrace {
    /// Final per-vertex values (levels, distances, labels, or ranks).
    pub values: Vec<f64>,
    /// One entry per executed sweep.
    pub sweeps: Vec<SweepLoads>,
}

use gts_exec::ThreadPool;
use gts_graph::Csr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Unreached/unset marker for min-propagation.
pub const UNSET: f64 = f64::INFINITY;

/// Run min-propagation over `g` using the machine's available host
/// parallelism. See [`min_propagation_threads`] for the semantics and the
/// determinism argument.
pub fn min_propagation(
    g: &Csr,
    source: Option<u32>,
    edge_val: impl Fn(u32, u32, f64) -> f64 + Sync,
    partition: impl Fn(u32) -> usize + Sync,
    nparts: usize,
) -> PropagationTrace {
    min_propagation_threads(
        g,
        source,
        edge_val,
        partition,
        nparts,
        gts_exec::default_host_threads(),
    )
}

/// Run min-propagation over `g` with an explicit host-thread count.
///
/// * `source = Some(s)` starts with only `s` active at value 0 (BFS/SSSP);
///   `None` starts every vertex active at value `v` (CC label propagation —
///   pass a symmetrised graph for weakly connected components).
/// * `edge_val(v, w, x)` is the candidate value arriving at `w` along edge
///   `v→w` when `v` holds `x` (BFS: `x + 1`; SSSP: `x + weight`; CC: `x`).
///   Candidates must be non-negative (sign bit clear): the parallel sweep
///   takes minima through `AtomicU64::fetch_min` on the IEEE-754 bit
///   pattern, which orders exactly like the numbers on `[0, +inf]`.
/// * `partition(v)` places vertex `v` for load accounting; `nparts` is the
///   partition count.
///
/// Every thread count produces the same trace: `min` is commutative (and
/// bit-exact on f64 bits), the per-vertex activation flag depends only on
/// whether the sweep's minimal candidate beats the old value (not on the
/// order candidates land), and per-worker load shards merge with integer
/// addition.
pub fn min_propagation_threads(
    g: &Csr,
    source: Option<u32>,
    edge_val: impl Fn(u32, u32, f64) -> f64 + Sync,
    partition: impl Fn(u32) -> usize + Sync,
    nparts: usize,
    threads: usize,
) -> PropagationTrace {
    let pool = ThreadPool::new(threads);
    let n = g.num_vertices() as usize;
    let mut values;
    let mut active;
    match source {
        Some(s) => {
            values = vec![UNSET; n];
            values[s as usize] = 0.0;
            active = vec![false; n];
            active[s as usize] = true;
        }
        None => {
            values = (0..n).map(|v| v as f64).collect();
            active = vec![true; n];
        }
    }
    let mut sweeps = Vec::new();
    loop {
        // Synchronous (BSP) semantics: all sends read this superstep's
        // values, all receives land in `next` — in-place updates would let
        // a value hop through many vertices in one superstep and
        // undercount the supersteps/messages the accountants price.
        let next: Vec<AtomicU64> = values.iter().map(|x| AtomicU64::new(x.to_bits())).collect();
        let next_active: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let shards = pool.par_ranges(
            n,
            4096,
            || SweepLoads::new(nparts),
            |loads, r| {
                for v in r {
                    if !active[v] {
                        continue;
                    }
                    let v = v as u32;
                    let pv = partition(v);
                    loads.nodes[pv].active_vertices += 1;
                    let x = values[v as usize];
                    for &w in g.neighbors(v) {
                        loads.nodes[pv].edges += 1;
                        let cand = edge_val(v, w, x);
                        debug_assert!(
                            cand.to_bits() >> 63 == 0,
                            "min_propagation candidates must be non-negative"
                        );
                        let pw = partition(w);
                        loads.nodes[pw].msgs_in += 1;
                        if pw != pv {
                            loads.nodes[pw].remote_msgs_in += 1;
                        }
                        // `prev` is a running min of the old value and the
                        // candidates applied so far, so observing a strict
                        // improvement here is equivalent to the serial test
                        // `min_candidate < old value` — the first executor
                        // of a minimal candidate always sees it.
                        let prev = next[w as usize].fetch_min(cand.to_bits(), Ordering::Relaxed);
                        if cand.to_bits() < prev {
                            next_active[w as usize].store(true, Ordering::Relaxed);
                        }
                    }
                }
            },
        );
        let mut loads = SweepLoads::new(nparts);
        for shard in shards {
            for (slot, s) in loads.nodes.iter_mut().zip(shard.nodes) {
                slot.active_vertices += s.active_vertices;
                slot.edges += s.edges;
                slot.msgs_in += s.msgs_in;
                slot.remote_msgs_in += s.remote_msgs_in;
            }
        }
        values = next
            .into_iter()
            .map(|a| f64::from_bits(a.into_inner()))
            .collect();
        let next_active: Vec<bool> = next_active
            .into_iter()
            .map(AtomicBool::into_inner)
            .collect();
        sweeps.push(loads);
        if !next_active.contains(&true) {
            break;
        }
        active = next_active;
    }
    PropagationTrace { values, sweeps }
}

/// Run `iterations` of PageRank (damping `df`) with the paper's kernel
/// semantics (no dangling redistribution), recording per-sweep loads.
///
/// Deliberately serial: floating-point sums do not commute, and the ranks
/// are pinned bit-for-bit (within 1e-12) to the sequential
/// `gts_graph::reference::pagerank`, so the accumulation order must stay
/// exactly the reference's. Host parallelism with exact results lives in
/// the engine path (`gts_core`), which accumulates in fixed point.
pub fn pagerank_propagation(
    g: &Csr,
    df: f64,
    iterations: u32,
    partition: impl Fn(u32) -> usize,
    nparts: usize,
) -> PropagationTrace {
    let n = g.num_vertices() as usize;
    let mut prev = vec![1.0 / n as f64; n];
    let mut sweeps = Vec::new();
    for _ in 0..iterations {
        let mut loads = SweepLoads::new(nparts);
        let mut next = vec![(1.0 - df) / n as f64; n];
        for v in 0..g.num_vertices() {
            let pv = partition(v);
            loads.nodes[pv].active_vertices += 1;
            let deg = g.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = df * prev[v as usize] / deg as f64;
            for &w in g.neighbors(v) {
                loads.nodes[pv].edges += 1;
                let pw = partition(w);
                loads.nodes[pw].msgs_in += 1;
                if pw != pv {
                    loads.nodes[pw].remote_msgs_in += 1;
                }
                next[w as usize] += share;
            }
        }
        sweeps.push(loads);
        prev = next;
    }
    PropagationTrace {
        values: prev,
        sweeps,
    }
}

/// Standard placements.
pub mod place {
    /// Hash partitioning over `n` nodes (what Pregel-family systems use).
    pub fn hash(n: usize) -> impl Fn(u32) -> usize {
        move |v| (v as usize) % n
    }

    /// Everything on one partition (shared-memory engines).
    pub fn single() -> impl Fn(u32) -> usize {
        |_| 0
    }

    /// Two-way split at a vertex boundary (TOTEM's GPU/CPU partition:
    /// vertices below `split` on partition 0 = GPU, the rest on CPU).
    pub fn two_way(split: u32) -> impl Fn(u32) -> usize {
        move |v| usize::from(v >= split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::generate::rmat;
    use gts_graph::{reference, Csr, EdgeList};

    fn csr(scale: u32) -> Csr {
        Csr::from_edge_list(&rmat(scale))
    }

    #[test]
    fn min_propagation_reproduces_bfs() {
        let g = csr(8);
        let t = min_propagation(&g, Some(0), |_, _, x| x + 1.0, place::hash(4), 4);
        let want = reference::bfs(&g, 0);
        for (v, &lvl) in want.iter().enumerate() {
            if lvl == u32::MAX {
                assert_eq!(t.values[v], UNSET);
            } else {
                assert_eq!(t.values[v], lvl as f64);
            }
        }
    }

    #[test]
    fn min_propagation_reproduces_sssp() {
        let g = csr(7);
        let t = min_propagation(
            &g,
            Some(0),
            |v, w, x| x + EdgeList::edge_weight(v, w) as f64,
            place::single(),
            1,
        );
        let want = reference::sssp(&g, 0);
        for (v, &d) in want.iter().enumerate() {
            if d == u32::MAX {
                assert_eq!(t.values[v], UNSET);
            } else {
                assert_eq!(t.values[v], d as f64);
            }
        }
    }

    #[test]
    fn min_propagation_reproduces_cc_on_symmetrized() {
        let g = csr(7).symmetrize();
        let t = min_propagation(&g, None, |_, _, x| x, place::hash(3), 3);
        let want = reference::connected_components(&g);
        for (v, &label) in want.iter().enumerate() {
            assert_eq!(t.values[v], label as f64);
        }
    }

    #[test]
    fn pagerank_propagation_matches_reference() {
        let g = csr(7);
        let t = pagerank_propagation(&g, 0.85, 5, place::single(), 1);
        let want = reference::pagerank(&g, 0.85, 5);
        for (got, want) in t.values.iter().zip(&want) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn loads_account_every_edge_for_pagerank() {
        let g = csr(7);
        let t = pagerank_propagation(&g, 0.85, 3, place::hash(4), 4);
        assert_eq!(t.sweeps.len(), 3);
        for s in &t.sweeps {
            assert_eq!(s.total_edges(), g.num_edges() as u64);
        }
    }

    #[test]
    fn remote_messages_vanish_on_single_partition() {
        let g = csr(6);
        let t = min_propagation(&g, Some(0), |_, _, x| x + 1.0, place::single(), 1);
        for s in &t.sweeps {
            assert_eq!(s.total_remote_msgs(), 0);
        }
    }

    #[test]
    fn min_propagation_is_thread_count_independent() {
        // Values, activation frontier, and every per-sweep/per-partition
        // load cell must match the serial run exactly for any pool size.
        let g = csr(10);
        let serial = min_propagation_threads(
            &g,
            Some(0),
            |v, w, x| x + EdgeList::edge_weight(v, w) as f64,
            place::hash(4),
            4,
            1,
        );
        for threads in [2, 4, 8] {
            let par = min_propagation_threads(
                &g,
                Some(0),
                |v, w, x| x + EdgeList::edge_weight(v, w) as f64,
                place::hash(4),
                4,
                threads,
            );
            assert_eq!(par.values, serial.values, "threads={threads}");
            assert_eq!(par.sweeps.len(), serial.sweeps.len(), "threads={threads}");
            for (a, b) in par.sweeps.iter().zip(&serial.sweeps) {
                assert_eq!(a.nodes, b.nodes, "threads={threads}");
            }
        }
    }

    #[test]
    fn two_way_placement_splits_at_boundary() {
        let p = place::two_way(10);
        assert_eq!(p(9), 0);
        assert_eq!(p(10), 1);
    }
}
