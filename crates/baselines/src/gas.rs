//! PowerGraph-style Gather-Apply-Scatter engine with vertex-cut
//! partitioning.
//!
//! PowerGraph splits *edges* (not vertices) across nodes and replicates
//! each vertex on every node that holds one of its edges; Gather collects
//! over adjacent edges, Apply updates the master replica, Scatter pushes
//! the new value to the mirrors. Compared with the BSP engines this means:
//!
//! * edge work is balanced by construction (no straggler partitions even
//!   under power-law skew — PowerGraph's raison d'être),
//! * network traffic is proportional to *replicas of active vertices*, not
//!   to cross-partition edges,
//! * memory per node is `E/N` edges plus the replicated vertex state.
//!
//! The replication factor of random (hash) vertex-cuts grows slowly with
//! the node count; we use the standard `1 + c·√N` fit.

use crate::cluster::{ClusterConfig, FrameworkProfile};
use crate::propagation::{self, place, PropagationTrace};
use crate::report::{finish_run, record_sweep, values_to_u32, BaselineError, RunReport};
use gts_graph::{Csr, EdgeList};
use gts_sim::{SimDuration, SimTime};
use gts_telemetry::Telemetry;

/// A GAS engine instance (defaults to the PowerGraph cost profile).
#[derive(Debug, Clone)]
pub struct GasEngine {
    /// Cluster hardware.
    pub cluster: ClusterConfig,
    /// Cost profile (PowerGraph's by default).
    pub profile: FrameworkProfile,
    telemetry: Telemetry,
}

impl GasEngine {
    /// PowerGraph on the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        GasEngine {
            cluster,
            profile: FrameworkProfile::powergraph(),
            telemetry: Telemetry::new(),
        }
    }

    /// Record runs into `tel` instead of a private handle.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// The engine's telemetry handle (counters of the last run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Replication factor of a random vertex-cut over `n` nodes.
    pub fn replication_factor(&self) -> f64 {
        1.0 + 0.8 * (self.cluster.nodes as f64).sqrt()
    }

    /// BFS from `source`.
    pub fn run_bfs(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        let trace =
            propagation::min_propagation(g, Some(source), |_, _, x| x + 1.0, place::single(), 1);
        let run = self.account(g, &trace, "BFS")?;
        Ok((values_to_u32(&trace.values), run))
    }

    /// SSSP from `source`.
    pub fn run_sssp(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        let trace = propagation::min_propagation(
            g,
            Some(source),
            |v, w, x| x + EdgeList::edge_weight(v, w) as f64,
            place::single(),
            1,
        );
        let run = self.account(g, &trace, "SSSP")?;
        Ok((values_to_u32(&trace.values), run))
    }

    /// Weakly connected components.
    pub fn run_cc(&self, g: &Csr) -> Result<(Vec<u32>, RunReport), BaselineError> {
        let sym = g.symmetrize();
        let trace = propagation::min_propagation(&sym, None, |_, _, x| x, place::single(), 1);
        let run = self.account(&sym, &trace, "CC")?;
        Ok((values_to_u32(&trace.values), run))
    }

    /// PageRank for `iterations` sweeps.
    pub fn run_pagerank(
        &self,
        g: &Csr,
        iterations: u32,
    ) -> Result<(Vec<f64>, RunReport), BaselineError> {
        let trace = propagation::pagerank_propagation(g, 0.85, iterations, place::single(), 1);
        let run = self.account(g, &trace, "PageRank")?;
        Ok((trace.values.clone(), run))
    }

    /// Price a functional trace under this engine's architecture model
    /// (public for harness-side trace reuse).
    pub fn account(
        &self,
        g: &Csr,
        trace: &PropagationTrace,
        algorithm: &str,
    ) -> Result<RunReport, BaselineError> {
        let p = &self.profile;
        let c = &self.cluster;
        let nodes = c.nodes as u64;
        let rf = self.replication_factor();

        // Vertex-cut memory: E/N edges + replicated vertex state per node.
        let part_edges = (g.num_edges() as u64).div_ceil(nodes);
        let replicated_vertices = ((g.num_vertices() as f64 * rf) / nodes as f64).ceil() as u64;
        let graph_bytes =
            part_edges * p.memory_bytes_per_edge + replicated_vertices * p.memory_bytes_per_vertex;
        if graph_bytes > c.memory_per_node {
            return Err(BaselineError::OutOfMemory {
                engine: p.name.to_string(),
                needed: graph_bytes,
                available: c.memory_per_node,
            });
        }

        self.telemetry.start_run();
        let mut t = SimTime::ZERO;
        let mut network_bytes = 0u64;
        for (j, sweep) in trace.sweeps.iter().enumerate() {
            // Edge work is balanced by the vertex-cut: each node handles
            // ~active_edges/N, gather + scatter (2 passes).
            let active_edges: u64 = sweep.total_edges();
            let active_vertices: u64 = sweep.nodes.iter().map(|l| l.active_vertices).sum();
            let per_node_edges = active_edges.div_ceil(nodes);
            let work_ns = 2.0 * per_node_edges as f64 * p.per_edge_ns
                + (active_vertices.div_ceil(nodes)) as f64 * p.per_vertex_ns;
            let compute = SimDuration::from_secs_f64(work_ns / c.cores_per_node as f64 / 1e9);
            // Replica synchronisation: each active vertex syncs its mirrors
            // (gather results in, new value out).
            let sync_bytes = (active_vertices as f64 * (rf - 1.0)) as u64 * p.bytes_per_message * 2;
            network_bytes += sync_bytes;
            let net = c.network_bw.transfer_time(sync_bytes / nodes.max(1));
            let step = compute + net + c.network_latency + p.superstep_overhead;
            record_sweep(
                &self.telemetry,
                j as u32,
                active_vertices,
                active_edges,
                step,
            );
            t += step;
        }
        Ok(finish_run(
            &self.telemetry,
            p.name,
            algorithm,
            t - SimTime::ZERO,
            trace.sweeps.len() as u32,
            network_bytes,
            graph_bytes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsp::BspEngine;
    use gts_graph::generate::rmat;
    use gts_graph::reference;

    fn small() -> Csr {
        Csr::from_edge_list(&rmat(8))
    }

    fn engine() -> GasEngine {
        GasEngine::new(ClusterConfig::paper_cluster())
    }

    #[test]
    fn results_match_reference() {
        let g = small();
        let (levels, _) = engine().run_bfs(&g, 0).unwrap();
        assert_eq!(levels, reference::bfs(&g, 0));
        let (dist, _) = engine().run_sssp(&g, 0).unwrap();
        assert_eq!(dist, reference::sssp(&g, 0));
        let (cc, _) = engine().run_cc(&g).unwrap();
        assert_eq!(cc, reference::connected_components(&g));
        let (pr, _) = engine().run_pagerank(&g, 5).unwrap();
        let want = reference::pagerank(&g, 0.85, 5);
        for (a, b) in pr.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn powergraph_beats_giraph_on_pagerank() {
        // Fig. 6b: PowerGraph is the fastest distributed baseline.
        let g = small();
        let pg = engine().run_pagerank(&g, 3).unwrap().1.elapsed;
        let giraph = BspEngine::new(ClusterConfig::paper_cluster(), FrameworkProfile::giraph())
            .run_pagerank(&g, 3)
            .unwrap()
            .1
            .elapsed;
        assert!(pg < giraph, "PowerGraph {pg:?} must beat Giraph {giraph:?}");
    }

    #[test]
    fn vertex_cut_uses_less_memory_than_bsp_on_skewed_graphs() {
        // C++ + vertex-cut: memory per node far below the JVM engines'.
        let g = small();
        let gas = engine().run_pagerank(&g, 1).unwrap().1.memory_peak;
        let bsp = BspEngine::new(ClusterConfig::paper_cluster(), FrameworkProfile::giraph())
            .run_pagerank(&g, 1)
            .unwrap()
            .1
            .memory_peak;
        assert!(gas < bsp);
    }

    #[test]
    fn replication_factor_grows_sublinearly() {
        let rf30 = engine().replication_factor();
        let mut c = ClusterConfig::paper_cluster();
        c.nodes = 120;
        let rf120 = GasEngine::new(c).replication_factor();
        assert!(rf120 > rf30);
        assert!(rf120 < 4.0 * rf30, "√N growth, not linear");
    }

    #[test]
    fn ooms_when_partition_exceeds_node_memory() {
        let mut c = ClusterConfig::paper_cluster();
        c.memory_per_node = 1024;
        match GasEngine::new(c).run_pagerank(&small(), 1) {
            Err(BaselineError::OutOfMemory { engine, .. }) => assert_eq!(engine, "PowerGraph"),
            other => panic!("expected OOM, got {other:?}"),
        }
    }
}
