//! TOTEM-like hybrid CPU+GPU engine (Gharaibeh et al.), the paper's main
//! GPU-side comparator (Fig. 8, Table 5).
//!
//! TOTEM partitions the graph once: a GPU partition sized to fit device
//! memory and a CPU partition processed by host threads, with boundary
//! updates exchanged over PCI-E every superstep. Its three drawbacks, all
//! reproduced here, are the paper's Sec. 8 critique:
//!
//! 1. the CPU partition is processed by *slow* cores, and its share grows
//!    with graph size (GPU capacity is fixed) — underutilising the GPU;
//! 2. performance depends on a per-algorithm, per-dataset partition-ratio
//!    option (Table 5 / Appendix C) — [`Totem::best_ratio`] sweeps it;
//! 3. the whole graph must still fit in *host* memory as one contiguous
//!    in-memory structure — TOTEM "cannot process RMAT30-32".

use crate::propagation::{self, place, PropagationTrace};
use crate::report::{finish_run, record_sweep, values_to_u32, BaselineError, RunReport};
use gts_core::sweep::GpuLane;
use gts_gpu::timer::{GpuTimer, KernelClass, KernelCost};
use gts_gpu::{GpuConfig, PcieConfig};
use gts_graph::{reference, Csr, EdgeList};
use gts_sim::{SimDuration, SimTime};
use gts_telemetry::Telemetry;

/// TOTEM configuration.
#[derive(Debug, Clone)]
pub struct TotemConfig {
    /// GPU model (kernel rates, device memory).
    pub gpu: GpuConfig,
    /// PCI-E link for boundary synchronisation.
    pub pcie: PcieConfig,
    /// Host memory (must hold the whole graph).
    pub host_memory: u64,
    /// Host threads.
    pub threads: u32,
    /// Host nanoseconds per edge per core.
    pub cpu_per_edge_ns: f64,
    /// Fraction of edges placed on the GPU (Table 5's GPU%), before
    /// clamping to what device memory allows.
    pub gpu_fraction: f64,
}

impl TotemConfig {
    /// The paper's workstation with a given GPU.
    pub fn new(gpu: GpuConfig) -> Self {
        TotemConfig {
            gpu,
            pcie: PcieConfig::gen3_x16(),
            host_memory: 128 << 30,
            threads: 16,
            cpu_per_edge_ns: 30.0,
            gpu_fraction: 0.5,
        }
    }

    /// Scale host memory by `1/div`.
    pub fn with_scaled_host_memory(mut self, div: u64) -> Self {
        self.host_memory = (128u64 << 30) / div.max(1);
        self
    }

    /// Set the GPU partition ratio.
    pub fn with_gpu_fraction(mut self, f: f64) -> Self {
        self.gpu_fraction = f.clamp(0.0, 1.0);
        self
    }
}

/// In-memory bytes per edge of TOTEM's CSR-like representation.
const HOST_BYTES_PER_EDGE: u64 = 8;
/// Device bytes per edge of the GPU partition.
const DEV_BYTES_PER_EDGE: u64 = 8;
/// Device bytes per vertex of state (levels/ranks for all vertices are
/// visible to the GPU partition for boundary reads).
const DEV_BYTES_PER_VERTEX: u64 = 8;

/// The TOTEM engine.
#[derive(Debug, Clone)]
pub struct Totem {
    cfg: TotemConfig,
    telemetry: Telemetry,
}

impl Totem {
    /// Create an engine.
    pub fn new(cfg: TotemConfig) -> Self {
        Totem {
            cfg,
            telemetry: Telemetry::new(),
        }
    }

    /// Record runs into `tel` instead of a private handle.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// The engine's telemetry handle (counters of the last run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration in use.
    pub fn config(&self) -> &TotemConfig {
        &self.cfg
    }

    /// Lane-slots per edge of a bulk (whole-partition) kernel: TOTEM's big
    /// kernels saturate the device the same way GTS's 32 concurrent
    /// page-kernels do, so the ≈1.5 VWC lane-slots per edge spread over
    /// the device's concurrent kernel slots.
    fn bulk_slots_per_edge(&self) -> f64 {
        1.5 / self.cfg.gpu.max_concurrent_kernels as f64
    }

    /// BFS from `source`.
    pub fn run_bfs(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        let split = self.split_vertex(g)?;
        let trace = propagation::min_propagation(
            g,
            Some(source),
            |_, _, x| x + 1.0,
            place::two_way(split),
            2,
        );
        let run = self.account(
            g,
            &trace,
            "BFS",
            KernelClass::Traversal,
            self.bulk_slots_per_edge(),
        )?;
        Ok((values_to_u32(&trace.values), run))
    }

    /// SSSP from `source`.
    pub fn run_sssp(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        let split = self.split_vertex(g)?;
        let trace = propagation::min_propagation(
            g,
            Some(source),
            |v, w, x| x + EdgeList::edge_weight(v, w) as f64,
            place::two_way(split),
            2,
        );
        let run = self.account(
            g,
            &trace,
            "SSSP",
            KernelClass::Traversal,
            self.bulk_slots_per_edge(),
        )?;
        Ok((values_to_u32(&trace.values), run))
    }

    /// Weakly connected components.
    pub fn run_cc(&self, g: &Csr) -> Result<(Vec<u32>, RunReport), BaselineError> {
        let sym = g.symmetrize();
        let split = self.split_vertex(&sym)?;
        let trace = propagation::min_propagation(&sym, None, |_, _, x| x, place::two_way(split), 2);
        let run = self.account(
            &sym,
            &trace,
            "CC",
            KernelClass::Traversal,
            self.bulk_slots_per_edge(),
        )?;
        Ok((values_to_u32(&trace.values), run))
    }

    /// PageRank for `iterations` sweeps.
    pub fn run_pagerank(
        &self,
        g: &Csr,
        iterations: u32,
    ) -> Result<(Vec<f64>, RunReport), BaselineError> {
        let split = self.split_vertex(g)?;
        let trace =
            propagation::pagerank_propagation(g, 0.85, iterations, place::two_way(split), 2);
        let run = self.account(
            g,
            &trace,
            "PageRank",
            KernelClass::Compute,
            self.bulk_slots_per_edge(),
        )?;
        Ok((trace.values.clone(), run))
    }

    /// Betweenness centrality from one source (Fig. 13c). Functionally
    /// Brandes; timed as a forward BFS plus a backward accumulation pass of
    /// the same volume with heavier per-edge arithmetic.
    pub fn run_bc(&self, g: &Csr, source: u32) -> Result<(Vec<f64>, RunReport), BaselineError> {
        let split = self.split_vertex(g)?;
        let trace = propagation::min_propagation(
            g,
            Some(source),
            |_, _, x| x + 1.0,
            place::two_way(split),
            2,
        );
        // Forward + backward: the accumulation pass replays the levels in
        // reverse with the same volume, so time, traffic and superstep
        // count all double. The heavier per-edge arithmetic is 1.5× the
        // lane-slots of a plain traversal.
        let run = self.account_passes(
            g,
            &trace,
            "BC",
            KernelClass::Traversal,
            self.bulk_slots_per_edge() * 1.5,
            true,
        )?;
        let bc = reference::betweenness(g, &[source]);
        Ok((bc, run))
    }

    /// Sweep the partition ratio and return `(best_fraction, elapsed)` for
    /// PageRank — how Table 5's recommended options were found.
    pub fn best_ratio(
        &self,
        g: &Csr,
        candidates: &[f64],
        pagerank: bool,
    ) -> Result<(f64, SimDuration), BaselineError> {
        let mut best: Option<(f64, SimDuration)> = None;
        for &f in candidates {
            let engine = Totem::new(self.cfg.clone().with_gpu_fraction(f));
            let elapsed = if pagerank {
                engine.run_pagerank(g, 3)?.1.elapsed
            } else {
                engine.run_bfs(g, 0)?.1.elapsed
            };
            if best.map(|(_, t)| elapsed < t).unwrap_or(true) {
                best = Some((f, elapsed));
            }
        }
        Ok(best.expect("at least one candidate"))
    }

    /// Actual fraction of edges on the GPU after capacity clamping.
    pub fn effective_gpu_fraction(&self, g: &Csr) -> Result<f64, BaselineError> {
        let split = self.split_vertex(g)?;
        let offsets = g.offsets();
        Ok(offsets[split as usize] as f64 / g.num_edges().max(1) as f64)
    }

    /// Pick the vertex boundary so the GPU partition holds ~`gpu_fraction`
    /// of the edges, clamped by device memory; verifies host capacity.
    fn split_vertex(&self, g: &Csr) -> Result<u32, BaselineError> {
        let host_needed = g.num_edges() as u64 * HOST_BYTES_PER_EDGE + g.num_vertices() as u64 * 8;
        if host_needed > self.cfg.host_memory {
            return Err(BaselineError::OutOfMemory {
                engine: "TOTEM".to_string(),
                needed: host_needed,
                available: self.cfg.host_memory,
            });
        }
        // Device budget for topology after the full state vector.
        let state = g.num_vertices() as u64 * DEV_BYTES_PER_VERTEX;
        let budget = self.cfg.gpu.device_memory.saturating_sub(state);
        let max_dev_edges = budget / DEV_BYTES_PER_EDGE;
        let want_edges = ((g.num_edges() as f64 * self.cfg.gpu_fraction) as u64).min(max_dev_edges);
        // Largest split with prefix-edges <= want_edges.
        let offsets = g.offsets();
        let split = offsets.partition_point(|&o| o <= want_edges) - 1;
        Ok(split as u32)
    }

    fn account(
        &self,
        g: &Csr,
        trace: &PropagationTrace,
        algorithm: &str,
        class: KernelClass,
        slots_per_edge: f64,
    ) -> Result<RunReport, BaselineError> {
        self.account_passes(g, trace, algorithm, class, slots_per_edge, false)
    }

    /// Cost accounting. With `backward_pass`, a second pass of the same
    /// per-sweep volume is replayed in reverse (Brandes' accumulation), so
    /// the registry carries both passes and the derived report doubles.
    fn account_passes(
        &self,
        g: &Csr,
        trace: &PropagationTrace,
        algorithm: &str,
        class: KernelClass,
        slots_per_edge: f64,
        backward_pass: bool,
    ) -> Result<RunReport, BaselineError> {
        let c = &self.cfg;
        self.telemetry.start_run();
        // One uncached lane, one stream: the GPU partition runs one bulk
        // kernel per superstep, then the boundary values cross PCI-E as a
        // blocking chunk copy once the CPU partition has also finished.
        let mut lane = GpuLane::uncached(GpuTimer::new(c.gpu.clone(), c.pcie.clone(), 1));
        let mut t = SimTime::ZERO;
        let mut pcie_bytes = 0u64;
        let mut steps = Vec::with_capacity(trace.sweeps.len());
        for sweep in &trace.sweeps {
            let gpu_load = &sweep.nodes[0];
            let cpu_load = &sweep.nodes[1];
            let cost = KernelCost {
                class,
                lane_slots: (gpu_load.edges as f64 * slots_per_edge).round() as u64,
                atomic_ops: 0,
            };
            let k = lane
                .issue_kernel(cost, t, "bulk")
                .expect("baselines run without fault injection");
            let cpu_end = t + SimDuration::from_secs_f64(
                cpu_load.edges as f64 * c.cpu_per_edge_ns / c.threads as f64 / 1e9,
            );
            // Boundary values cross PCI-E both ways each superstep.
            let boundary = (gpu_load.remote_msgs_in + cpu_load.remote_msgs_in) * 8;
            pcie_bytes += boundary;
            let sync = lane.write_back(boundary, k.end.max(cpu_end));
            steps.push((
                gpu_load.active_vertices + cpu_load.active_vertices,
                gpu_load.edges + cpu_load.edges,
                sync.end - t,
            ));
            t = sync.end;
        }
        for (j, &(v, e, step)) in steps.iter().enumerate() {
            record_sweep(&self.telemetry, j as u32, v, e, step);
        }
        let n = steps.len();
        let mut sweeps = n as u32;
        let mut elapsed = t - SimTime::ZERO;
        if backward_pass {
            for (k, &(v, e, step)) in steps.iter().rev().enumerate() {
                record_sweep(&self.telemetry, (n + k) as u32, v, e, step);
            }
            elapsed = elapsed * 2;
            pcie_bytes *= 2;
            sweeps *= 2;
        }
        let host_needed = g.num_edges() as u64 * HOST_BYTES_PER_EDGE + g.num_vertices() as u64 * 8;
        Ok(finish_run(
            &self.telemetry,
            "TOTEM",
            algorithm,
            elapsed,
            sweeps,
            pcie_bytes,
            host_needed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::generate::rmat;
    use gts_graph::reference;

    fn small() -> Csr {
        Csr::from_edge_list(&rmat(8))
    }

    fn engine() -> Totem {
        Totem::new(TotemConfig::new(GpuConfig::titan_x()))
    }

    #[test]
    fn results_match_reference() {
        let g = small();
        assert_eq!(engine().run_bfs(&g, 0).unwrap().0, reference::bfs(&g, 0));
        assert_eq!(engine().run_sssp(&g, 0).unwrap().0, reference::sssp(&g, 0));
        assert_eq!(
            engine().run_cc(&g).unwrap().0,
            reference::connected_components(&g)
        );
        let (pr, _) = engine().run_pagerank(&g, 4).unwrap();
        for (a, b) in pr.iter().zip(&reference::pagerank(&g, 0.85, 4)) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn bc_matches_reference() {
        let g = small();
        let (bc, run) = engine().run_bc(&g, 0).unwrap();
        let want = reference::betweenness(&g, &[0]);
        for (a, b) in bc.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(run.elapsed.as_nanos() > 0);
    }

    #[test]
    fn tiny_device_memory_clamps_gpu_partition() {
        // 8 KiB device: after 2 KiB of state, only ~768 edges fit — far
        // fewer than RMAT8's 4096.
        let mut cfg = TotemConfig::new(GpuConfig::titan_x().with_device_memory(8 * 1024));
        cfg.gpu_fraction = 1.0;
        let totem = Totem::new(cfg);
        let g = small();
        let frac = totem.effective_gpu_fraction(&g).unwrap();
        assert!(
            frac < 0.5,
            "device memory must clamp the partition, got {frac}"
        );
    }

    #[test]
    fn larger_cpu_share_is_slower() {
        // Underutilising the GPU costs time — drawback (1). Needs a graph
        // large enough that edge work dominates launch overheads.
        let g = Csr::from_edge_list(&rmat(13));
        let mostly_gpu = Totem::new(TotemConfig::new(GpuConfig::titan_x()).with_gpu_fraction(0.95))
            .run_pagerank(&g, 3)
            .unwrap()
            .1
            .elapsed;
        let mostly_cpu = Totem::new(TotemConfig::new(GpuConfig::titan_x()).with_gpu_fraction(0.05))
            .run_pagerank(&g, 3)
            .unwrap()
            .1
            .elapsed;
        assert!(mostly_gpu < mostly_cpu);
    }

    #[test]
    fn host_memory_gates_the_whole_graph() {
        // Drawback (3): contiguous in-memory format.
        let g = small();
        let mut cfg = TotemConfig::new(GpuConfig::titan_x());
        cfg.host_memory = 1024;
        match Totem::new(cfg).run_bfs(&g, 0) {
            Err(BaselineError::OutOfMemory { engine, .. }) => assert_eq!(engine, "TOTEM"),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn best_ratio_prefers_more_gpu_when_it_fits() {
        let g = Csr::from_edge_list(&rmat(13));
        let (frac, _) = engine().best_ratio(&g, &[0.1, 0.5, 0.9], true).unwrap();
        assert!(frac >= 0.5, "GPU-heavy ratios should win, got {frac}");
    }
}
