//! GraphChi-like out-of-core engine (Kyrola et al., OSDI'12) — the other
//! single-machine streaming system the paper's Sec. 8 discussion covers:
//! "GraphChi has the similar problem [to X-Stream], but shows a worse
//! performance than X-Stream, due to requiring fully loading (not
//! streaming) a shard file and no overlapping between disk I/O and
//! computation."
//!
//! Model: the graph is split into `P` shards, each holding the in-edges of
//! an interval of vertices, sorted by source (the Parallel Sliding Windows
//! layout). One full pass over the graph loads every shard completely
//! (plus the sliding windows of every other shard), computes, and writes
//! updated shards back. Two architectural facts carry the comparison:
//!
//! * **No I/O/compute overlap** — per-interval time is `load + compute +
//!   write`, a sum, where GTS and X-Stream overlap these phases;
//! * **read-and-write traffic** — shard edge values are rewritten each
//!   pass, doubling the I/O volume of a read-only streamer.

use crate::propagation::{self, place, PropagationTrace};
use crate::report::{finish_run, record_sweep, values_to_u32, BaselineError, RunReport};
use gts_graph::Csr;
use gts_sim::{Bandwidth, SimDuration, SimTime};
use gts_telemetry::Telemetry;

/// GraphChi engine configuration.
#[derive(Debug, Clone)]
pub struct GraphChiConfig {
    /// Host memory available for one interval's subgraph (determines the
    /// shard count).
    pub memory_budget: u64,
    /// Worker threads.
    pub threads: u32,
    /// CPU nanoseconds per edge.
    pub per_edge_ns: f64,
    /// Storage sequential bandwidth.
    pub storage_bw: Bandwidth,
    /// On-disk bytes per edge (src + dst + value).
    pub edge_bytes: u64,
}

impl Default for GraphChiConfig {
    fn default() -> Self {
        GraphChiConfig {
            memory_budget: 8 << 30,
            threads: 16,
            per_edge_ns: 18.0,
            storage_bw: Bandwidth::gib_per_sec(2),
            edge_bytes: 12,
        }
    }
}

/// The GraphChi-like engine.
#[derive(Debug, Clone)]
pub struct GraphChi {
    cfg: GraphChiConfig,
    telemetry: Telemetry,
}

impl GraphChi {
    /// Create an engine.
    pub fn new(cfg: GraphChiConfig) -> Self {
        GraphChi {
            cfg,
            telemetry: Telemetry::new(),
        }
    }

    /// Record runs into `tel` instead of a private handle.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// The engine's telemetry handle (counters of the last run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of shards for `g` under the memory budget (at least 1).
    pub fn num_shards(&self, g: &Csr) -> u64 {
        let graph_bytes = g.num_edges() as u64 * self.cfg.edge_bytes;
        graph_bytes.div_ceil(self.cfg.memory_budget.max(1)).max(1)
    }

    /// BFS from `source`.
    pub fn run_bfs(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        let trace =
            propagation::min_propagation(g, Some(source), |_, _, x| x + 1.0, place::single(), 1);
        let run = self.account(g, &trace, "BFS");
        Ok((values_to_u32(&trace.values), run))
    }

    /// PageRank for `iterations` sweeps.
    pub fn run_pagerank(
        &self,
        g: &Csr,
        iterations: u32,
    ) -> Result<(Vec<f64>, RunReport), BaselineError> {
        let trace = propagation::pagerank_propagation(g, 0.85, iterations, place::single(), 1);
        let run = self.account(g, &trace, "PageRank");
        Ok((trace.values.clone(), run))
    }

    fn account(&self, g: &Csr, trace: &PropagationTrace, algorithm: &str) -> RunReport {
        let c = &self.cfg;
        self.telemetry.start_run();
        let graph_bytes = g.num_edges() as u64 * c.edge_bytes;
        let mut t = SimTime::ZERO;
        let mut io_bytes = 0u64;
        for (j, sweep) in trace.sweeps.iter().enumerate() {
            // Every pass fully loads the graph's shards and rewrites the
            // updated edge values: read + write of the whole edge file.
            let load = c.storage_bw.transfer_time(graph_bytes);
            let write = c.storage_bw.transfer_time(graph_bytes);
            let compute = SimDuration::from_secs_f64(
                g.num_edges() as f64 * c.per_edge_ns / c.threads as f64 / 1e9,
            );
            io_bytes += 2 * graph_bytes;
            // The defining drawback: NO overlap — the phases are summed,
            // not maxed (X-Stream and GTS overlap I/O with compute).
            let step = load + compute + write;
            record_sweep(
                &self.telemetry,
                j as u32,
                sweep.total_active(),
                g.num_edges() as u64,
                step,
            );
            t += step;
        }
        self.telemetry
            .add(gts_telemetry::keys::IO_BYTES_READ, io_bytes);
        finish_run(
            &self.telemetry,
            "GraphChi",
            algorithm,
            t - SimTime::ZERO,
            trace.sweeps.len() as u32,
            io_bytes,
            self.cfg.memory_budget.min(graph_bytes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xstream::{XStream, XStreamConfig};
    use gts_graph::generate::rmat;
    use gts_graph::reference;

    fn small() -> Csr {
        Csr::from_edge_list(&rmat(8))
    }

    #[test]
    fn results_match_reference() {
        let g = small();
        let e = GraphChi::new(GraphChiConfig::default());
        assert_eq!(e.run_bfs(&g, 0).unwrap().0, reference::bfs(&g, 0));
        let (pr, _) = e.run_pagerank(&g, 3).unwrap();
        for (a, b) in pr.iter().zip(&reference::pagerank(&g, 0.85, 3)) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn graphchi_is_slower_than_xstream() {
        // Sec. 8: no I/O/compute overlap + full rewrites make GraphChi the
        // slower of the two out-of-core streamers.
        let g = Csr::from_edge_list(&rmat(12));
        let chi = GraphChi::new(GraphChiConfig::default())
            .run_pagerank(&g, 5)
            .unwrap()
            .1
            .elapsed;
        let xs = XStream::new(XStreamConfig::default())
            .run_pagerank(&g, 5)
            .unwrap()
            .1
            .elapsed;
        assert!(chi > xs, "GraphChi {chi} must trail X-Stream {xs}");
    }

    #[test]
    fn shard_count_scales_with_graph_over_budget() {
        let g = Csr::from_edge_list(&rmat(12));
        let mut cfg = GraphChiConfig::default();
        cfg.memory_budget = g.num_edges() as u64 * cfg.edge_bytes / 4;
        let e = GraphChi::new(cfg);
        assert_eq!(e.num_shards(&g), 4);
    }
}
