//! Results and errors shared by all baseline engines.
//!
//! Baselines report through the same telemetry-backed [`RunReport`] as the
//! GTS engine: each engine holds a [`Telemetry`] handle, records its
//! counters into the registry under the [`keys`] glossary, and derives the
//! report from it with [`finish_run`]. There is no baseline-specific
//! report struct any more.

use gts_sim::SimDuration;
use gts_telemetry::{keys, Telemetry};
use std::fmt;

pub use gts_telemetry::RunReport;

/// Record a finished run's aggregates into `tel`'s registry and derive the
/// unified [`RunReport`] from it. The caller must have called
/// [`Telemetry::start_run`] at the start of the run (so per-sweep counters
/// recorded along the way survive).
pub fn finish_run(
    tel: &Telemetry,
    engine: &str,
    algorithm: &str,
    elapsed: SimDuration,
    sweeps: u32,
    network_bytes: u64,
    memory_peak: u64,
) -> RunReport {
    tel.set(keys::RUN_ELAPSED_NS, elapsed.as_nanos());
    tel.set(keys::RUN_SWEEPS, sweeps as u64);
    tel.add(keys::NETWORK_BYTES, network_bytes);
    tel.max(keys::MEMORY_PEAK, memory_peak);
    RunReport::from_telemetry(tel, algorithm, engine)
}

/// Record one sweep's activity under the per-sweep keys.
pub fn record_sweep(
    tel: &Telemetry,
    sweep: u32,
    active_vertices: u64,
    active_edges: u64,
    elapsed: SimDuration,
) {
    tel.add(
        keys::sweep(sweep, keys::SWEEP_ACTIVE_VERTICES),
        active_vertices,
    );
    tel.add(keys::sweep(sweep, keys::SWEEP_ACTIVE_EDGES), active_edges);
    tel.set(
        keys::sweep(sweep, keys::SWEEP_ELAPSED_NS),
        elapsed.as_nanos(),
    );
}

/// Why a baseline failed — the figures' `O.O.M.` cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// A node, host, or device could not hold its share of the data.
    OutOfMemory {
        /// Engine that failed.
        engine: String,
        /// Bytes it needed on the most loaded node/device.
        needed: u64,
        /// Bytes that node/device has.
        available: u64,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::OutOfMemory {
                engine,
                needed,
                available,
            } => write!(
                f,
                "{engine}: out of memory ({needed} B needed, {available} B available)"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Narrow a propagation result to the engines' u32 convention:
/// non-finite (unreached) becomes `u32::MAX`.
pub fn values_to_u32(values: &[f64]) -> Vec<u32> {
    values
        .iter()
        .map(|&v| if v.is_finite() { v as u32 } else { u32::MAX })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_display_names_the_engine() {
        let e = BaselineError::OutOfMemory {
            engine: "Giraph".into(),
            needed: 100,
            available: 10,
        };
        assert!(e.to_string().contains("Giraph"));
        assert!(e.to_string().contains("out of memory"));
    }

    #[test]
    fn finish_run_round_trips_through_the_registry() {
        let tel = Telemetry::new();
        tel.start_run();
        record_sweep(&tel, 0, 10, 100, SimDuration::from_nanos(5));
        record_sweep(&tel, 1, 20, 200, SimDuration::from_nanos(7));
        let r = finish_run(
            &tel,
            "Giraph",
            "BFS",
            SimDuration::from_nanos(12),
            2,
            4096,
            1 << 20,
        );
        assert_eq!(r.engine, "Giraph");
        assert_eq!(r.elapsed.as_nanos(), tel.counter(keys::RUN_ELAPSED_NS));
        assert_eq!(r.network_bytes, 4096);
        assert_eq!(r.memory_peak, 1 << 20);
        assert_eq!(r.per_sweep.len(), 2);
        assert_eq!(r.per_sweep[1].active_edges, 200);
        assert_eq!(r.per_sweep[1].elapsed.as_nanos(), 7);
    }
}
