//! Results and errors shared by all baseline engines.

use gts_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of one baseline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineRun {
    /// Engine name as printed in the paper's figures ("Giraph",
    /// "PowerGraph", "TOTEM", ...).
    pub engine: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Simulated elapsed time.
    pub elapsed: SimDuration,
    /// Supersteps / iterations executed.
    pub sweeps: u32,
    /// Bytes that crossed the network (distributed engines only).
    pub network_bytes: u64,
    /// Peak memory demand observed on the most loaded node/device.
    pub memory_peak: u64,
}

/// Why a baseline failed — the figures' `O.O.M.` cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// A node, host, or device could not hold its share of the data.
    OutOfMemory {
        /// Engine that failed.
        engine: String,
        /// Bytes it needed on the most loaded node/device.
        needed: u64,
        /// Bytes that node/device has.
        available: u64,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::OutOfMemory {
                engine,
                needed,
                available,
            } => write!(
                f,
                "{engine}: out of memory ({needed} B needed, {available} B available)"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Narrow a propagation result to the engines' u32 convention:
/// non-finite (unreached) becomes `u32::MAX`.
pub fn values_to_u32(values: &[f64]) -> Vec<u32> {
    values
        .iter()
        .map(|&v| if v.is_finite() { v as u32 } else { u32::MAX })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_display_names_the_engine() {
        let e = BaselineError::OutOfMemory {
            engine: "Giraph".into(),
            needed: 100,
            available: 10,
        };
        assert!(e.to_string().contains("Giraph"));
        assert!(e.to_string().contains("out of memory"));
    }
}
