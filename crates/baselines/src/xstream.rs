//! X-Stream-like edge-centric scatter-gather streaming engine (the
//! related-work comparison of Sec. 8).
//!
//! X-Stream keeps vertex data in memory and streams the **entire,
//! unordered edge list** from storage every scatter-gather iteration; the
//! scatter phase emits an *update* per active edge, which is shuffled to
//! disk and streamed back in the gather phase. Two consequences the paper
//! calls out, both reproduced:
//!
//! * fine-grained sequential access means a traversal algorithm pays a
//!   full edge-list scan (plus the update shuffle) *per level* — on a
//!   high-diameter graph like YahooWeb "X-Stream did not finish in a
//!   reasonable amount of time";
//! * a mixture of read and write streaming only partially exploits
//!   sequential bandwidth, unlike GTS's read-only page streaming.

use crate::propagation::{self, place, PropagationTrace};
use crate::report::{finish_run, record_sweep, values_to_u32, BaselineError, RunReport};
use gts_graph::{Csr, EdgeList};
use gts_sim::{Bandwidth, SimDuration, SimTime};
use gts_telemetry::Telemetry;

/// X-Stream engine configuration.
#[derive(Debug, Clone)]
pub struct XStreamConfig {
    /// Host memory for vertex + update buffers.
    pub host_memory: u64,
    /// Worker threads.
    pub threads: u32,
    /// CPU nanoseconds per streamed edge.
    pub per_edge_ns: f64,
    /// Storage sequential bandwidth (edges live on SSD).
    pub storage_bw: Bandwidth,
    /// Bytes per on-disk edge record (src, dst — X-Stream needs no index).
    pub edge_bytes: u64,
    /// Bytes per shuffled update record.
    pub update_bytes: u64,
}

impl Default for XStreamConfig {
    fn default() -> Self {
        XStreamConfig {
            host_memory: 128 << 30,
            threads: 16,
            per_edge_ns: 12.0,
            storage_bw: Bandwidth::gib_per_sec(2),
            edge_bytes: 8,
            update_bytes: 8,
        }
    }
}

/// The X-Stream-like engine.
#[derive(Debug, Clone)]
pub struct XStream {
    cfg: XStreamConfig,
    telemetry: Telemetry,
}

impl XStream {
    /// Create an engine.
    pub fn new(cfg: XStreamConfig) -> Self {
        XStream {
            cfg,
            telemetry: Telemetry::new(),
        }
    }

    /// Record runs into `tel` instead of a private handle.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// The engine's telemetry handle (counters of the last run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// BFS from `source`.
    pub fn run_bfs(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        self.check(g)?;
        let trace =
            propagation::min_propagation(g, Some(source), |_, _, x| x + 1.0, place::single(), 1);
        let run = self.account(g, &trace, "BFS");
        Ok((values_to_u32(&trace.values), run))
    }

    /// SSSP from `source`.
    pub fn run_sssp(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        self.check(g)?;
        let trace = propagation::min_propagation(
            g,
            Some(source),
            |v, w, x| x + EdgeList::edge_weight(v, w) as f64,
            place::single(),
            1,
        );
        let run = self.account(g, &trace, "SSSP");
        Ok((values_to_u32(&trace.values), run))
    }

    /// PageRank for `iterations` sweeps.
    pub fn run_pagerank(
        &self,
        g: &Csr,
        iterations: u32,
    ) -> Result<(Vec<f64>, RunReport), BaselineError> {
        self.check(g)?;
        let trace = propagation::pagerank_propagation(g, 0.85, iterations, place::single(), 1);
        let run = self.account(g, &trace, "PageRank");
        Ok((trace.values.clone(), run))
    }

    fn check(&self, g: &Csr) -> Result<(), BaselineError> {
        // Vertex data must fit in memory (X-Stream's own requirement; its
        // partitioned fallback is out of scope for the comparison).
        let needed = g.num_vertices() as u64 * 16;
        if needed > self.cfg.host_memory {
            return Err(BaselineError::OutOfMemory {
                engine: "X-Stream".to_string(),
                needed,
                available: self.cfg.host_memory,
            });
        }
        Ok(())
    }

    fn account(&self, g: &Csr, trace: &PropagationTrace, algorithm: &str) -> RunReport {
        let c = &self.cfg;
        self.telemetry.start_run();
        let full_scan_bytes = g.num_edges() as u64 * c.edge_bytes;
        let mut t = SimTime::ZERO;
        let mut io_bytes = 0u64;
        for (j, sweep) in trace.sweeps.iter().enumerate() {
            // Scatter: stream the WHOLE edge list, regardless of frontier.
            let scan = c.storage_bw.transfer_time(full_scan_bytes);
            // Updates: one per edge leaving an active vertex; written then
            // read back (shuffle + gather) — mixed read/write streaming.
            let updates = sweep.total_edges();
            let update_io = c.storage_bw.transfer_time(2 * updates * c.update_bytes);
            let compute = SimDuration::from_secs_f64(
                (g.num_edges() as u64 + updates) as f64 * c.per_edge_ns / c.threads as f64 / 1e9,
            );
            io_bytes += full_scan_bytes + 2 * updates * c.update_bytes;
            // I/O and compute overlap; the longer one gates the iteration.
            let step = (scan + update_io).max(compute);
            record_sweep(
                &self.telemetry,
                j as u32,
                sweep.total_active(),
                g.num_edges() as u64 + updates,
                step,
            );
            t += step;
        }
        self.telemetry
            .add(gts_telemetry::keys::IO_BYTES_READ, io_bytes);
        finish_run(
            &self.telemetry,
            "X-Stream",
            algorithm,
            t - SimTime::ZERO,
            trace.sweeps.len() as u32,
            io_bytes,
            g.num_vertices() as u64 * 16,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::generate::{rmat, web_like};
    use gts_graph::reference;

    fn small() -> Csr {
        Csr::from_edge_list(&rmat(8))
    }

    #[test]
    fn results_match_reference() {
        let g = small();
        let e = XStream::new(XStreamConfig::default());
        assert_eq!(e.run_bfs(&g, 0).unwrap().0, reference::bfs(&g, 0));
        assert_eq!(e.run_sssp(&g, 0).unwrap().0, reference::sssp(&g, 0));
        let (pr, _) = e.run_pagerank(&g, 3).unwrap();
        for (a, b) in pr.iter().zip(&reference::pagerank(&g, 0.85, 3)) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn high_diameter_graphs_blow_up_traversal_cost() {
        // Sec. 8: per-level full edge scans ruin BFS on deep graphs.
        let e = XStream::new(XStreamConfig::default());
        let shallow = Csr::from_edge_list(&rmat(10));
        let deep = Csr::from_edge_list(&web_like(64, 16, 4, 3));
        let (_, shallow_run) = e.run_bfs(&shallow, 0).unwrap();
        let (_, deep_run) = e.run_bfs(&deep, 0).unwrap();
        // The deep graph has ~4x fewer edges but far more levels: X-Stream
        // must be slower on it anyway.
        assert!(shallow.num_edges() > 3 * deep.num_edges());
        assert!(deep_run.elapsed > shallow_run.elapsed);
        assert!(deep_run.sweeps > 4 * shallow_run.sweeps);
    }

    #[test]
    fn pagerank_scans_once_per_iteration() {
        let g = small();
        let e = XStream::new(XStreamConfig::default());
        let (_, r3) = e.run_pagerank(&g, 3).unwrap();
        let (_, r6) = e.run_pagerank(&g, 6).unwrap();
        assert_eq!(r6.sweeps, 6);
        let ratio = r6.elapsed.as_secs_f64() / r3.elapsed.as_secs_f64();
        assert!(
            (ratio - 2.0).abs() < 0.05,
            "linear in iterations, got {ratio}"
        );
    }

    #[test]
    fn vertex_data_must_fit() {
        let cfg = XStreamConfig {
            host_memory: 64,
            ..Default::default()
        };
        match XStream::new(cfg).run_bfs(&small(), 0) {
            Err(BaselineError::OutOfMemory { engine, .. }) => assert_eq!(engine, "X-Stream"),
            other => panic!("expected OOM, got {other:?}"),
        }
    }
}
