//! Pregel-family BSP engines (Giraph / GraphX / Naiad) on the simulated
//! cluster.
//!
//! Vertices are hash-partitioned across nodes; each superstep runs vertex
//! kernels on every node in parallel, exchanges messages, and barriers —
//! the Bulk-Synchronous Parallel model the paper describes in its
//! introduction. One engine serves all three frameworks via
//! [`FrameworkProfile`] cost coefficients (DESIGN.md §1 documents this
//! substitution).
//!
//! The architectural facts that drive Fig. 6's shape live here:
//!
//! * supersteps are gated by the **most loaded node** (skew hurts),
//! * every cross-partition edge pays **network bytes**,
//! * each node must hold its graph partition *plus* buffered messages in
//!   memory — exceeding it is the figures' `O.O.M.`.

use crate::cluster::{ClusterConfig, FrameworkProfile};
use crate::propagation::{self, place, PropagationTrace};
use crate::report::{finish_run, record_sweep, values_to_u32, BaselineError, RunReport};
use gts_graph::{Csr, EdgeList};
use gts_sim::{SimDuration, SimTime};
use gts_telemetry::Telemetry;

/// A BSP engine instance.
#[derive(Debug, Clone)]
pub struct BspEngine {
    /// Cluster hardware.
    pub cluster: ClusterConfig,
    /// Framework cost profile.
    pub profile: FrameworkProfile,
    telemetry: Telemetry,
}

impl BspEngine {
    /// Create an engine for `profile` on `cluster`.
    pub fn new(cluster: ClusterConfig, profile: FrameworkProfile) -> Self {
        BspEngine {
            cluster,
            profile,
            telemetry: Telemetry::new(),
        }
    }

    /// Record runs into `tel` instead of a private handle.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// The engine's telemetry handle (counters of the last run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// BFS from `source`; returns per-vertex levels (`u32::MAX` unreached).
    pub fn run_bfs(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        let n = self.cluster.nodes;
        let trace =
            propagation::min_propagation(g, Some(source), |_, _, x| x + 1.0, place::hash(n), n);
        let run = self.account(g, &trace, "BFS")?;
        Ok((values_to_u32(&trace.values), run))
    }

    /// SSSP from `source` with the workspace's deterministic weights.
    pub fn run_sssp(&self, g: &Csr, source: u32) -> Result<(Vec<u32>, RunReport), BaselineError> {
        let n = self.cluster.nodes;
        let trace = propagation::min_propagation(
            g,
            Some(source),
            |v, w, x| x + EdgeList::edge_weight(v, w) as f64,
            place::hash(n),
            n,
        );
        let run = self.account(g, &trace, "SSSP")?;
        Ok((values_to_u32(&trace.values), run))
    }

    /// Weakly connected components (runs on the symmetrised graph, as the
    /// Pregel-family implementations do).
    pub fn run_cc(&self, g: &Csr) -> Result<(Vec<u32>, RunReport), BaselineError> {
        let n = self.cluster.nodes;
        let sym = g.symmetrize();
        let trace = propagation::min_propagation(&sym, None, |_, _, x| x, place::hash(n), n);
        let run = self.account(&sym, &trace, "CC")?;
        Ok((values_to_u32(&trace.values), run))
    }

    /// PageRank for `iterations` sweeps.
    pub fn run_pagerank(
        &self,
        g: &Csr,
        iterations: u32,
    ) -> Result<(Vec<f64>, RunReport), BaselineError> {
        let n = self.cluster.nodes;
        let trace = propagation::pagerank_propagation(g, 0.85, iterations, place::hash(n), n);
        let run = self.account(g, &trace, "PageRank")?;
        Ok((trace.values.clone(), run))
    }

    /// Turn a functional trace into simulated time + memory verdicts.
    ///
    /// Public so the experiment harness can price the *same* trace under
    /// several framework profiles (Giraph/GraphX/Naiad share the hash
    /// partitioning, so their functional traces are identical).
    pub fn account(
        &self,
        g: &Csr,
        trace: &PropagationTrace,
        algorithm: &str,
    ) -> Result<RunReport, BaselineError> {
        let p = &self.profile;
        let c = &self.cluster;
        let nodes = c.nodes as u64;
        self.telemetry.start_run();

        // Static partition footprint on the most loaded node (hash
        // partitioning balances within ~1 page, so mean is a fair proxy).
        let part_edges = (g.num_edges() as u64).div_ceil(nodes);
        let part_vertices = (g.num_vertices() as u64).div_ceil(nodes);
        let graph_bytes =
            part_edges * p.memory_bytes_per_edge + part_vertices * p.memory_bytes_per_vertex;

        let mut t = SimTime::ZERO;
        let mut network_bytes = 0u64;
        let mut memory_peak = graph_bytes;
        for (j, sweep) in trace.sweeps.iter().enumerate() {
            let mut compute_max = SimDuration::ZERO;
            let mut net_max = SimDuration::ZERO;
            let mut active_vertices = 0u64;
            let mut active_edges = 0u64;
            for load in &sweep.nodes {
                active_vertices += load.active_vertices;
                active_edges += load.edges;
                let work_ns = (load.edges + load.msgs_in) as f64 * p.per_edge_ns
                    + load.active_vertices as f64 * p.per_vertex_ns;
                let compute = SimDuration::from_secs_f64(work_ns / c.cores_per_node as f64 / 1e9);
                compute_max = compute_max.max(compute);
                let bytes_in = load.remote_msgs_in * p.bytes_per_message;
                network_bytes += bytes_in;
                net_max = net_max.max(c.network_bw.transfer_time(bytes_in));
                // Messages are buffered per node before the barrier.
                let msg_bytes = load.msgs_in * p.bytes_per_message;
                memory_peak = memory_peak.max(graph_bytes + msg_bytes);
                if graph_bytes + msg_bytes > c.memory_per_node {
                    return Err(BaselineError::OutOfMemory {
                        engine: p.name.to_string(),
                        needed: graph_bytes + msg_bytes,
                        available: c.memory_per_node,
                    });
                }
            }
            let step = compute_max + net_max + c.network_latency + p.superstep_overhead;
            record_sweep(
                &self.telemetry,
                j as u32,
                active_vertices,
                active_edges,
                step,
            );
            t += step;
        }
        Ok(finish_run(
            &self.telemetry,
            p.name,
            algorithm,
            t - SimTime::ZERO,
            trace.sweeps.len() as u32,
            network_bytes,
            memory_peak,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::generate::rmat;
    use gts_graph::reference;

    fn small() -> Csr {
        Csr::from_edge_list(&rmat(8))
    }

    fn engine() -> BspEngine {
        BspEngine::new(ClusterConfig::paper_cluster(), FrameworkProfile::giraph())
    }

    #[test]
    fn bfs_matches_reference() {
        let g = small();
        let (levels, run) = engine().run_bfs(&g, 0).unwrap();
        assert_eq!(levels, reference::bfs(&g, 0));
        assert!(run.elapsed.as_nanos() > 0);
        assert!(run.network_bytes > 0, "hash partitioning must cross nodes");
    }

    #[test]
    fn sssp_matches_reference() {
        let g = small();
        let (dist, _) = engine().run_sssp(&g, 0).unwrap();
        assert_eq!(dist, reference::sssp(&g, 0));
    }

    #[test]
    fn cc_matches_reference() {
        let g = small();
        let (cc, _) = engine().run_cc(&g).unwrap();
        assert_eq!(cc, reference::connected_components(&g));
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = small();
        let (pr, run) = engine().run_pagerank(&g, 5).unwrap();
        let want = reference::pagerank(&g, 0.85, 5);
        for (a, b) in pr.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(run.sweeps, 5);
    }

    #[test]
    fn giraph_is_slower_than_powergraph_profiles_under_bsp() {
        // Same engine, different coefficients: the per-framework ordering
        // must carry through to elapsed time.
        let g = small();
        let giraph = engine().run_pagerank(&g, 3).unwrap().1.elapsed;
        let fast = BspEngine::new(
            ClusterConfig::paper_cluster(),
            FrameworkProfile::powergraph(),
        )
        .run_pagerank(&g, 3)
        .unwrap()
        .1
        .elapsed;
        assert!(fast < giraph);
    }

    #[test]
    fn small_node_memory_ooms() {
        let mut cluster = ClusterConfig::paper_cluster();
        cluster.memory_per_node = 4 * 1024; // 4 KiB per node
        let e = BspEngine::new(cluster, FrameworkProfile::giraph());
        match e.run_pagerank(&small(), 2) {
            Err(BaselineError::OutOfMemory { engine, .. }) => assert_eq!(engine, "Giraph"),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn superstep_overhead_dominates_deep_traversals() {
        // A long path: one vertex per level. BSP pays the superstep
        // overhead per level, so elapsed grows with depth.
        let mut edges = Vec::new();
        for v in 0..200u32 {
            edges.push((v, v + 1));
        }
        let g = Csr::from_edge_list(&gts_graph::EdgeList::new(201, edges));
        let (_, run) = engine().run_bfs(&g, 0).unwrap();
        let min_expected = engine().profile.superstep_overhead * 200;
        assert!(run.elapsed >= min_expected);
    }
}
