//! The distributed substrate: a cluster of commodity nodes.
//!
//! Models the paper's testbed for the distributed baselines (Sec. 7.1): one
//! master plus 30 slaves, each with two 8-core 2.60 GHz Xeons and 64 GB of
//! memory, connected by Infiniband QDR (40 Gbps). Per-framework execution
//! costs (JVM object overhead, message serialisation, barrier latency) are
//! captured in [`FrameworkProfile`] presets — these coefficients are the
//! honest tuning knobs of the substitution and are documented per framework
//! below.

use gts_sim::{Bandwidth, SimDuration};

/// Hardware of the distributed cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker nodes.
    pub nodes: usize,
    /// CPU cores per node.
    pub cores_per_node: u32,
    /// Usable memory per node, in bytes.
    pub memory_per_node: u64,
    /// Per-link network bandwidth.
    pub network_bw: Bandwidth,
    /// Per-superstep network/barrier latency.
    pub network_latency: SimDuration,
}

impl ClusterConfig {
    /// The paper's cluster: 30 slaves × (16 cores, 64 GB), IB QDR.
    pub fn paper_cluster() -> Self {
        ClusterConfig {
            nodes: 30,
            cores_per_node: 16,
            memory_per_node: 64 << 30,
            network_bw: Bandwidth::gbit_per_sec(40),
            network_latency: SimDuration::from_micros(200),
        }
    }

    /// The paper's cluster with memory *and fixed per-superstep costs*
    /// scaled by `1/div`, so both the OOM boundaries and the
    /// compute-to-overhead balance land where the paper's did
    /// (DESIGN.md §1: shrinking the workload without shrinking barrier
    /// costs would shift every engine into an overhead-dominated regime
    /// the paper never measured).
    pub fn scaled(div: u64) -> Self {
        let mut c = Self::paper_cluster();
        let div = div.max(1);
        c.memory_per_node /= div;
        c.network_latency = SimDuration::from_nanos(c.network_latency.as_nanos() / div);
        c
    }

    /// Total cluster memory.
    pub fn total_memory(&self) -> u64 {
        self.memory_per_node * self.nodes as u64
    }
}

/// Per-framework execution-cost coefficients.
///
/// These make one BSP engine stand in for three systems. The orderings are
/// the load-bearing facts (and match the paper's Fig. 6 narrative): Giraph
/// has the worst constants (JVM objects per edge, heavyweight supersteps),
/// GraphX pays Spark's shuffle machinery, Naiad's .NET/Mono build has the
/// worst memory behaviour ("Naiad shows the worst scalability"), and
/// PowerGraph's C++ GAS engine has by far the best constants and the best
/// scalability.
#[derive(Debug, Clone)]
pub struct FrameworkProfile {
    /// Framework name for reports.
    pub name: &'static str,
    /// CPU nanoseconds per edge processed (single core).
    pub per_edge_ns: f64,
    /// CPU nanoseconds per active vertex per superstep.
    pub per_vertex_ns: f64,
    /// Wire + serialisation bytes per message.
    pub bytes_per_message: u64,
    /// Resident bytes per edge of the in-memory graph representation
    /// (JVM/.NET object headers make this far larger than raw CSR).
    pub memory_bytes_per_edge: u64,
    /// Resident bytes per vertex.
    pub memory_bytes_per_vertex: u64,
    /// Fixed overhead per superstep (barrier, scheduling, GC pressure).
    pub superstep_overhead: SimDuration,
}

impl FrameworkProfile {
    /// Apache Giraph: BSP on Hadoop; worst per-element constants
    /// ("Giraph shows the worst performance", Sec. 7.2). Derived from the
    /// paper's own Fig. 6b: 1654 s for ten Twitter PageRank iterations
    /// over 480 cores ≈ 27 µs per edge-event per core; we use a milder
    /// 13 µs so the Giraph:PowerGraph ratio matches the ~20x the paper
    /// shows.
    pub fn giraph() -> Self {
        FrameworkProfile {
            name: "Giraph",
            per_edge_ns: 13_000.0,
            per_vertex_ns: 8_000.0,
            bytes_per_message: 48,
            memory_bytes_per_edge: 64,
            memory_bytes_per_vertex: 120,
            superstep_overhead: SimDuration::from_millis(450),
        }
    }

    /// Spark GraphX: dataflow over RDDs; heavy shuffles, mid-pack speed
    /// (Fig. 6b: 210 s for ten Twitter PageRank iterations ≈ 3.4 µs per
    /// edge-event per core).
    pub fn graphx() -> Self {
        FrameworkProfile {
            name: "GraphX",
            per_edge_ns: 3_400.0,
            per_vertex_ns: 2_500.0,
            bytes_per_message: 40,
            memory_bytes_per_edge: 56,
            memory_bytes_per_vertex: 96,
            superstep_overhead: SimDuration::from_millis(900),
        }
    }

    /// Naiad (timely dataflow on Mono): decent constants, worst memory
    /// behaviour — "Naiad shows the worst scalability" / frequent OOM.
    pub fn naiad() -> Self {
        FrameworkProfile {
            name: "Naiad",
            per_edge_ns: 5_500.0,
            per_vertex_ns: 4_000.0,
            bytes_per_message: 40,
            memory_bytes_per_edge: 96,
            memory_bytes_per_vertex: 160,
            superstep_overhead: SimDuration::from_millis(250),
        }
    }

    /// PowerGraph (GraphLab v2.2): native C++, vertex-cut; best constants
    /// and "the best scalability and performance" among the four.
    /// Derived from Fig. 6b: 84 s for ten Twitter PageRank iterations
    /// over 480 cores ≈ 1.4 µs per edge-visit per core (gather + scatter
    /// are two visits → 700 ns each).
    pub fn powergraph() -> Self {
        FrameworkProfile {
            name: "PowerGraph",
            per_edge_ns: 700.0,
            per_vertex_ns: 600.0,
            bytes_per_message: 16,
            memory_bytes_per_edge: 20,
            memory_bytes_per_vertex: 64,
            superstep_overhead: SimDuration::from_millis(120),
        }
    }

    /// Scale the fixed per-superstep overhead by `1/div`, matching a
    /// workload scaled by the same factor (see [`ClusterConfig::scaled`]).
    pub fn scaled(mut self, div: u64) -> Self {
        self.superstep_overhead =
            SimDuration::from_nanos(self.superstep_overhead.as_nanos() / div.max(1));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_testbed() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(c.nodes, 30);
        assert_eq!(c.cores_per_node, 16);
        assert_eq!(c.total_memory(), 30 * (64u64 << 30));
    }

    #[test]
    fn scaling_divides_memory() {
        let c = ClusterConfig::scaled(1 << 12);
        assert_eq!(c.memory_per_node, (64u64 << 30) >> 12);
        assert_eq!(c.nodes, 30);
    }

    #[test]
    fn framework_orderings_match_fig6_narrative() {
        let gi = FrameworkProfile::giraph();
        let gx = FrameworkProfile::graphx();
        let na = FrameworkProfile::naiad();
        let pg = FrameworkProfile::powergraph();
        // PowerGraph has the best constants across the board.
        for other in [&gi, &gx, &na] {
            assert!(pg.per_edge_ns < other.per_edge_ns);
            assert!(pg.memory_bytes_per_edge < other.memory_bytes_per_edge);
        }
        // Giraph is the slowest per element.
        assert!(gi.per_edge_ns > gx.per_edge_ns);
        // Naiad has the worst memory footprint (worst scalability).
        assert!(na.memory_bytes_per_edge > gi.memory_bytes_per_edge);
    }
}
