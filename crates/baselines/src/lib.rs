#![warn(missing_docs)]

//! # gts-baselines — every comparator engine from the GTS evaluation
//!
//! The paper compares GTS against three families of systems (Sec. 7). None
//! of them can be run here (they need a 31-node Infiniband cluster, or
//! C++/CUDA builds of research systems), so this crate re-implements each
//! family's *architecture* over the same simulated substrates the GTS
//! engine uses — which is exactly what the comparison figures measure:
//!
//! * **Distributed** (Fig. 6): a [`cluster`] simulator hosting a
//!   Pregel-style BSP engine ([`bsp`], standing in for Giraph / GraphX /
//!   Naiad via per-framework cost profiles) and a PowerGraph-style
//!   vertex-cut GAS engine ([`gas`]). They pay network time per superstep
//!   and OOM when a node's partition + message buffers exceed node memory.
//! * **Shared-memory CPU** (Fig. 7): [`cpu`] — a Ligra-like frontier engine
//!   with sparse/dense direction switching and an MTGL-like naive parallel
//!   engine. They need the whole CSR in host memory.
//! * **GPU-based** (Fig. 8): [`totem`] — the hybrid CPU+GPU partitioned
//!   engine with its GPU%:CPU% option table (Table 5), and [`gpu_only`] —
//!   CuSha/MapGraph-like engines that require the entire graph in device
//!   memory and OOM beyond it.
//! * **Out-of-core streaming** (Sec. 8's discussion): [`xstream`] — an
//!   X-Stream-like edge-centric scatter-gather engine that streams the
//!   *entire* edge list every iteration, which is why it collapses on
//!   high-diameter graphs.
//!
//! Every engine executes its algorithm functionally (results are validated
//! against `gts_graph::reference` in the test suites) and accounts time on
//! the same simulated clock as GTS.
//!
//! ```
//! use gts_baselines::bsp::BspEngine;
//! use gts_baselines::cluster::{ClusterConfig, FrameworkProfile};
//! use gts_graph::{generate::rmat, Csr};
//!
//! let graph = Csr::from_edge_list(&rmat(9));
//! let giraph = BspEngine::new(ClusterConfig::paper_cluster(), FrameworkProfile::giraph());
//! let (levels, run) = giraph.run_bfs(&graph, 0).unwrap();
//! assert_eq!(levels, gts_graph::reference::bfs(&graph, 0));
//! assert!(run.network_bytes > 0); // hash partitioning crosses nodes
//! ```

pub mod bsp;
pub mod cluster;
pub mod cpu;
pub mod gas;
pub mod gpu_only;
pub mod graphchi;
pub mod propagation;
pub mod report;
pub mod totem;
pub mod xstream;

pub use cluster::{ClusterConfig, FrameworkProfile};
pub use report::{BaselineError, RunReport};
