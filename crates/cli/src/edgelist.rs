//! Binary edge-list files, the exchange format between `gts generate` and
//! `gts build` (and an easy target for converters from other formats).
//!
//! ```text
//! offset  size  field
//! 0       8     magic "GTSEDGES"
//! 8       4     number of vertices (LE u32)
//! 12      8     number of edges (LE u64)
//! 20      ...   edges: (src LE u32, dst LE u32) pairs
//! ```
//!
//! Plain-text edge lists (one `src dst` pair per line, `#` comments) are
//! also accepted by [`read`] for interoperability with common datasets.

use gts_graph::{EdgeList, VertexId};
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"GTSEDGES";

/// Size of the binary header: magic + vertex count + edge count.
const HEADER_BYTES: u64 = 20;
/// Size of one binary edge record: two LE u32 endpoints.
const EDGE_BYTES: u64 = 8;

/// A malformed or unreadable edge-list file. This is the CLI's untrusted
/// input boundary: every field of the file is hostile until validated, so
/// failures are typed — never panics, and never allocations sized by an
/// unchecked header field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeListError {
    /// Underlying I/O failed.
    Io(String),
    /// The binary payload ended before the declared edge count.
    Truncated {
        /// Index of the first edge that could not be read.
        edge: u64,
    },
    /// The header declares more edges than the file could possibly hold —
    /// rejected *before* sizing any allocation from it.
    CountExceedsFile {
        /// Edge count from the header.
        declared: u64,
        /// Edges the file's byte length can actually hold.
        possible: u64,
    },
    /// A binary edge endpoint is not `< num_vertices`.
    EndpointOutOfRange {
        /// Index of the offending edge.
        edge: u64,
        /// Its endpoints.
        src: u32,
        /// Its endpoints.
        dst: u32,
        /// The header's vertex count.
        num_vertices: u32,
    },
    /// A text line failed to parse.
    Parse {
        /// 1-indexed line number.
        line: usize,
        /// What was wrong with it.
        what: String,
    },
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge file: {e}"),
            EdgeListError::Truncated { edge } => {
                write!(f, "edge file truncated at edge {edge}")
            }
            EdgeListError::CountExceedsFile { declared, possible } => write!(
                f,
                "edge file truncated: header declares {declared} edges but \
                 the file holds at most {possible}"
            ),
            EdgeListError::EndpointOutOfRange {
                edge,
                src,
                dst,
                num_vertices,
            } => write!(
                f,
                "edge {edge} ({src},{dst}) out of range (n={num_vertices})"
            ),
            EdgeListError::Parse { line, what } => write!(f, "line {line}: {what}"),
        }
    }
}

impl std::error::Error for EdgeListError {}

fn io_err(e: std::io::Error) -> EdgeListError {
    EdgeListError::Io(e.to_string())
}

/// Write `graph` as a binary edge-list file.
pub fn write(graph: &EdgeList, path: impl AsRef<Path>) -> Result<(), EdgeListError> {
    let mut w = BufWriter::new(File::create(&path).map_err(io_err)?);
    let mut run = || -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&graph.num_vertices.to_le_bytes())?;
        w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
        for &(s, d) in &graph.edges {
            w.write_all(&s.to_le_bytes())?;
            w.write_all(&d.to_le_bytes())?;
        }
        w.flush()
    };
    run().map_err(io_err)
}

/// Read an edge list: binary format if the magic matches, otherwise
/// parsed as whitespace-separated text pairs.
pub fn read(path: impl AsRef<Path>) -> Result<EdgeList, EdgeListError> {
    let mut f = File::open(&path).map_err(io_err)?;
    let mut magic = [0u8; 8];
    let is_binary = f.read_exact(&mut magic).is_ok() && &magic == MAGIC;
    if is_binary {
        read_binary(f)
    } else {
        read_text(File::open(&path).map_err(io_err)?)
    }
}

fn read_binary(mut f: File) -> Result<EdgeList, EdgeListError> {
    let mut head = [0u8; 12];
    f.read_exact(&mut head).map_err(io_err)?;
    let n = u32::from_le_bytes(head[0..4].try_into().unwrap());
    let m = u64::from_le_bytes(head[4..12].try_into().unwrap());
    // The declared count sizes the allocation below, so it must be proved
    // against the one thing the header cannot lie about — the file's own
    // byte length. A hostile `m` of 2^63 is rejected here in O(1) instead
    // of aborting the process inside `Vec::with_capacity`.
    let possible = f
        .metadata()
        .map_err(io_err)?
        .len()
        .saturating_sub(HEADER_BYTES)
        / EDGE_BYTES;
    if m > possible {
        return Err(EdgeListError::CountExceedsFile {
            declared: m,
            possible,
        });
    }
    let mut r = BufReader::new(f);
    let mut edges = Vec::with_capacity(m as usize);
    let mut buf = [0u8; 8];
    for i in 0..m {
        r.read_exact(&mut buf)
            .map_err(|_| EdgeListError::Truncated { edge: i })?;
        let s = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let d = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if s >= n || d >= n {
            // Validated here so `EdgeList::new`'s in-range invariant (a
            // panic, aimed at programming errors) never fires on input.
            return Err(EdgeListError::EndpointOutOfRange {
                edge: i,
                src: s,
                dst: d,
                num_vertices: n,
            });
        }
        edges.push((s, d));
    }
    Ok(EdgeList::new(n, edges))
}

fn read_text(f: File) -> Result<EdgeList, EdgeListError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_v: u64 = 0;
    let mut matrix_market = false;
    let mut mm_header_seen = false;
    let mut declared_n: Option<u32> = None;
    for (lineno, line) in BufReader::new(f).lines().enumerate() {
        let line = line.map_err(io_err)?;
        let line = line.trim();
        if lineno == 0 && line.starts_with("%%MatrixMarket") {
            matrix_market = true;
            continue;
        }
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let bad = |what: &str| EdgeListError::Parse {
            line: lineno + 1,
            what: what.into(),
        };
        let mut it = line.split_whitespace();
        if matrix_market && !mm_header_seen {
            // Dimensions line: rows cols nnz.
            mm_header_seen = true;
            let rows: u32 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("bad MatrixMarket size line"))?;
            let cols: u32 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("bad MatrixMarket size line"))?;
            declared_n = Some(rows.max(cols));
            continue;
        }
        let parse = |tok: Option<&str>| -> Result<VertexId, EdgeListError> {
            tok.ok_or_else(|| bad("expected 'src dst'"))?
                .parse()
                .map_err(|_| bad("bad vertex id"))
        };
        let (mut s, mut d) = (parse(it.next())?, parse(it.next())?);
        if matrix_market {
            // Coordinate entries are 1-indexed.
            if s == 0 || d == 0 {
                return Err(bad("MatrixMarket ids are 1-indexed"));
            }
            s -= 1;
            d -= 1;
        }
        if s == VertexId::MAX || d == VertexId::MAX {
            // `num_vertices` is max id + 1, which must itself fit in the
            // id type.
            return Err(bad("vertex id overflows the u32 id space"));
        }
        max_v = max_v.max(s as u64).max(d as u64);
        edges.push((s, d));
    }
    let inferred = if edges.is_empty() {
        0
    } else {
        max_v as u32 + 1
    };
    let n = declared_n.unwrap_or(inferred).max(inferred);
    Ok(EdgeList::new(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::generate::rmat;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gts-el-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn binary_roundtrip() {
        let g = rmat(8);
        let path = tmp("bin");
        write(&g, &path).unwrap();
        let back = read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, g);
    }

    #[test]
    fn text_format_parses() {
        let path = tmp("txt");
        std::fs::write(&path, "# a comment\n0 1\n1 2\n\n2 0\n").unwrap();
        let g = read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_vertices, 3);
        assert_eq!(g.edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn matrix_market_parses_one_indexed() {
        let path = tmp("mm");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate pattern general
% comment
4 4 3
1 2
2 3
4 1
",
        )
        .unwrap();
        let g = read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_vertices, 4);
        assert_eq!(g.edges, vec![(0, 1), (1, 2), (3, 0)]);
    }

    #[test]
    fn matrix_market_rejects_zero_ids() {
        let path = tmp("mm0");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate
2 2 1
0 1
",
        )
        .unwrap();
        let err = read(&path).unwrap_err().to_string();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("1-indexed"), "{err}");
    }

    #[test]
    fn text_errors_carry_line_numbers() {
        let path = tmp("bad");
        std::fs::write(&path, "0 1\nnot numbers\n").unwrap();
        let err = read(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, EdgeListError::Parse { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn truncated_binary_reports_edge() {
        let g = rmat(7);
        let path = tmp("trunc");
        write(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let err = read(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    /// A header declaring 2^60 edges over a 28-byte file must be rejected
    /// up front — typed, instantly, and without sizing any allocation
    /// from the hostile count.
    #[test]
    fn hostile_edge_count_rejected_before_allocating() {
        let path = tmp("hostile");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&10u32.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 60).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]); // one real edge
        std::fs::write(&path, &bytes).unwrap();
        let err = read(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            EdgeListError::CountExceedsFile { declared, possible } => {
                assert_eq!(declared, 1 << 60);
                assert_eq!(possible, 1);
            }
            other => panic!("expected CountExceedsFile, got {other:?}"),
        }
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn binary_endpoint_out_of_range_is_typed() {
        let path = tmp("oorange");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            err,
            EdgeListError::EndpointOutOfRange {
                edge: 0,
                src: 5,
                dst: 0,
                num_vertices: 2
            },
            "out-of-range endpoints are an error, not an EdgeList panic"
        );
    }

    #[test]
    fn text_id_overflowing_u32_space_is_rejected() {
        let path = tmp("idmax");
        std::fs::write(&path, format!("0 {}\n", u32::MAX)).unwrap();
        let err = read(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, EdgeListError::Parse { line: 1, .. }), "{err}");
    }
}
