//! Binary edge-list files, the exchange format between `gts generate` and
//! `gts build` (and an easy target for converters from other formats).
//!
//! ```text
//! offset  size  field
//! 0       8     magic "GTSEDGES"
//! 8       4     number of vertices (LE u32)
//! 12      8     number of edges (LE u64)
//! 20      ...   edges: (src LE u32, dst LE u32) pairs
//! ```
//!
//! Plain-text edge lists (one `src dst` pair per line, `#` comments) are
//! also accepted by [`read`] for interoperability with common datasets.

use gts_graph::{EdgeList, VertexId};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"GTSEDGES";

/// Write `graph` as a binary edge-list file.
pub fn write(graph: &EdgeList, path: impl AsRef<Path>) -> Result<(), String> {
    let mut w = BufWriter::new(File::create(&path).map_err(|e| e.to_string())?);
    let mut run = || -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&graph.num_vertices.to_le_bytes())?;
        w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
        for &(s, d) in &graph.edges {
            w.write_all(&s.to_le_bytes())?;
            w.write_all(&d.to_le_bytes())?;
        }
        w.flush()
    };
    run().map_err(|e| e.to_string())
}

/// Read an edge list: binary format if the magic matches, otherwise
/// parsed as whitespace-separated text pairs.
pub fn read(path: impl AsRef<Path>) -> Result<EdgeList, String> {
    let mut f = File::open(&path).map_err(|e| e.to_string())?;
    let mut magic = [0u8; 8];
    let is_binary = f.read_exact(&mut magic).is_ok() && &magic == MAGIC;
    if is_binary {
        read_binary(f)
    } else {
        read_text(File::open(&path).map_err(|e| e.to_string())?)
    }
}

fn read_binary(mut f: File) -> Result<EdgeList, String> {
    let mut head = [0u8; 12];
    f.read_exact(&mut head).map_err(|e| e.to_string())?;
    let n = u32::from_le_bytes(head[0..4].try_into().unwrap());
    let m = u64::from_le_bytes(head[4..12].try_into().unwrap());
    let mut r = BufReader::new(f);
    let mut edges = Vec::with_capacity(m as usize);
    let mut buf = [0u8; 8];
    for i in 0..m {
        r.read_exact(&mut buf)
            .map_err(|_| format!("edge file truncated at edge {i}"))?;
        let s = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let d = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if s >= n || d >= n {
            return Err(format!("edge {i} ({s},{d}) out of range (n={n})"));
        }
        edges.push((s, d));
    }
    Ok(EdgeList::new(n, edges))
}

fn read_text(f: File) -> Result<EdgeList, String> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_v: u64 = 0;
    let mut matrix_market = false;
    let mut mm_header_seen = false;
    let mut declared_n: Option<u32> = None;
    for (lineno, line) in BufReader::new(f).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if lineno == 0 && line.starts_with("%%MatrixMarket") {
            matrix_market = true;
            continue;
        }
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        if matrix_market && !mm_header_seen {
            // Dimensions line: rows cols nnz.
            mm_header_seen = true;
            let rows: u32 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad MatrixMarket size line", lineno + 1))?;
            let cols: u32 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad MatrixMarket size line", lineno + 1))?;
            declared_n = Some(rows.max(cols));
            continue;
        }
        let parse = |tok: Option<&str>| -> Result<VertexId, String> {
            tok.ok_or_else(|| format!("line {}: expected 'src dst'", lineno + 1))?
                .parse()
                .map_err(|_| format!("line {}: bad vertex id", lineno + 1))
        };
        let (mut s, mut d) = (parse(it.next())?, parse(it.next())?);
        if matrix_market {
            // Coordinate entries are 1-indexed.
            if s == 0 || d == 0 {
                return Err(format!(
                    "line {}: MatrixMarket ids are 1-indexed",
                    lineno + 1
                ));
            }
            s -= 1;
            d -= 1;
        }
        max_v = max_v.max(s as u64).max(d as u64);
        edges.push((s, d));
    }
    let inferred = if edges.is_empty() {
        0
    } else {
        max_v as u32 + 1
    };
    let n = declared_n.unwrap_or(inferred).max(inferred);
    Ok(EdgeList::new(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::generate::rmat;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gts-el-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn binary_roundtrip() {
        let g = rmat(8);
        let path = tmp("bin");
        write(&g, &path).unwrap();
        let back = read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, g);
    }

    #[test]
    fn text_format_parses() {
        let path = tmp("txt");
        std::fs::write(&path, "# a comment\n0 1\n1 2\n\n2 0\n").unwrap();
        let g = read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_vertices, 3);
        assert_eq!(g.edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn matrix_market_parses_one_indexed() {
        let path = tmp("mm");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate pattern general
% comment
4 4 3
1 2
2 3
4 1
",
        )
        .unwrap();
        let g = read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_vertices, 4);
        assert_eq!(g.edges, vec![(0, 1), (1, 2), (3, 0)]);
    }

    #[test]
    fn matrix_market_rejects_zero_ids() {
        let path = tmp("mm0");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate
2 2 1
0 1
",
        )
        .unwrap();
        let err = read(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("1-indexed"), "{err}");
    }

    #[test]
    fn text_errors_carry_line_numbers() {
        let path = tmp("bad");
        std::fs::write(&path, "0 1\nnot numbers\n").unwrap();
        let err = read(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn truncated_binary_reports_edge() {
        let g = rmat(7);
        let path = tmp("trunc");
        write(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let err = read(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("truncated"), "{err}");
    }
}
