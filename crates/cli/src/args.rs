//! Minimal `--flag value` argument parsing (no external dependencies —
//! the workspace's dependency policy allows only the approved crates, and
//! the CLI surface is small enough that a parser crate would be overkill).

use std::collections::HashMap;

/// Parsed arguments: positionals in order, flags as `--name value`.
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `argv`. Flags must be `--name value` pairs; a trailing flag
    /// without a value is an error.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                if flags.insert(name.to_string(), value.clone()).is_some() {
                    return Err(format!("flag --{name} given twice"));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(|s| s.as_str())
    }

    /// A required flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// An optional flag parsed to a type, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    }

    /// Error if any flag was not consumed by the command (catches typos).
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for k in self.flags.keys() {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown flag --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_flags() {
        let a = Args::parse(&sv(&["run", "bfs", "--source", "7", "--gpus", "2"])).unwrap();
        assert_eq!(a.positional(0), Some("run"));
        assert_eq!(a.positional(1), Some("bfs"));
        assert_eq!(a.required("source").unwrap(), "7");
        assert_eq!(a.get_or("gpus", 1usize).unwrap(), 2);
        assert_eq!(a.get_or("streams", 16usize).unwrap(), 16);
    }

    #[test]
    fn trailing_flag_without_value_is_an_error() {
        assert!(Args::parse(&sv(&["--out"])).is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(Args::parse(&sv(&["--x", "1", "--x", "2"])).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = Args::parse(&sv(&["--scale", "10", "--oops", "1"])).unwrap();
        assert!(a.reject_unknown(&["scale"]).is_err());
        assert!(a.reject_unknown(&["scale", "oops"]).is_ok());
    }

    #[test]
    fn bad_parse_reports_flag_name() {
        let a = Args::parse(&sv(&["--gpus", "two"])).unwrap();
        let err = a.get_or("gpus", 1usize).unwrap_err();
        assert!(err.contains("--gpus"));
    }
}
