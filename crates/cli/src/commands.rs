//! Subcommand implementations.

use crate::args::Args;
use crate::edgelist;
use std::io::Write as _;

/// Print a line to stdout, exiting quietly (success) when the pipe is
/// closed — `gts run ... | head` must not die with a broken-pipe panic.
/// Checked via `io::ErrorKind`, which is locale-independent (unlike the
/// strerror text a panic message would carry). Any other stdout failure
/// (disk full, closed descriptor) exits with the I/O code, not a panic.
macro_rules! outln {
    ($($arg:tt)*) => {{
        let mut out = std::io::stdout().lock();
        if let Err(e) = writeln!(out, $($arg)*) {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                std::process::exit(0);
            }
            eprintln!("error: failed writing to stdout: {e}");
            std::process::exit(i32::from(EXIT_IO));
        }
    }};
}
use gts_core::engine::{CachePolicyKind, Gts, GtsConfig, StorageLocation};
use gts_core::programs::{
    Bc, Bfs, Cc, Degrees, GtsProgram, KCore, PageRank, RadiusEstimation, Rwr, Sssp,
};
use gts_core::MutationSchedule;
use gts_core::{CheckpointConfig, CrashPoint, FaultConfig};
use gts_core::{Strategy, Telemetry};
use gts_gpu::GpuConfig;
use gts_graph::generate::{erdos_renyi, web_like, Rmat};
use gts_graph::{Dataset, EdgeList};
use gts_serve::scheduler::{serve, JobStatus, ServeConfig, ServeOutcome};
use gts_serve::workload::seeded_batch;
use gts_serve::{JournalConfig, ResilienceConfig, ServeError};
use gts_storage::{
    build_graph_store, load_store, save_store, GraphStore, PageFormatConfig, PhysicalIdConfig,
};

/// Exit code for usage errors: unknown command, bad flag, bad value.
pub const EXIT_USAGE: u8 = 2;
/// Exit code for I/O failures: unreadable graph/store, unwritable output.
pub const EXIT_IO: u8 = 3;
/// Exit code for engine failures: O.O.M. after degradation, exhausted
/// fault retries, corrupt pages.
pub const EXIT_ENGINE: u8 = 4;

/// A failed CLI invocation, classified so `main` can map each kind to a
/// distinct nonzero exit code (scripts can tell "you typed it wrong"
/// from "the disk is bad" from "the run failed").
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is wrong (exit code [`EXIT_USAGE`]).
    Usage(String),
    /// Reading or writing a file failed (exit code [`EXIT_IO`]).
    Io(String),
    /// The engine accepted the config but the run failed (exit code
    /// [`EXIT_ENGINE`]).
    Engine(String),
}

impl CliError {
    /// The process exit code for this class of failure.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => EXIT_USAGE,
            CliError::Io(_) => EXIT_IO,
            CliError::Engine(_) => EXIT_ENGINE,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Engine(m) => f.write_str(m),
        }
    }
}

/// Bare strings come from argument parsing and validation — usage errors.
impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.to_string())
    }
}

const USAGE: &str = "\
gts — GTS (SIGMOD'16) graph processing, reproduced in Rust

USAGE:
  gts generate --kind <rmat|erdos|web|twitter|uk2007|yahooweb> --out <file>
               [--scale N] [--edge-factor N] [--vertices N] [--edges N] [--seed N]
  gts build    --graph <edge file> --out <store file>
               [--page-size BYTES] [--p BYTES] [--q BYTES]
  gts info     <store file>
  gts run      <bfs|pagerank|sssp|cc|bc|rwr|degrees|kcore|radius>
               --store <store file>
               [--source N] [--iterations N] [--k N] [--gpus N] [--streams N]
               [--strategy p|s] [--storage mem|ssd:N|hdd:N]
               [--device-memory BYTES] [--cache lru|fifo|random] [--json]
               [--trace-out trace.json] [--host-threads N] [--fault-seed N]
               [--measure-host-phases true]
               [--checkpoint-dir DIR] [--checkpoint-every N] [--resume true]
               [--run-budget NS] [--sweep-deadline NS] [--counters-out FILE]
               [--crash-at-sweep K | --crash-mid-write K |
                --crash-mid-wal K | --crash-pre-apply K]
               [--mutate-at K] [--mutate-inserts N] [--mutate-deletes N]
               [--mutate-seed N]
               [--wal-dir DIR] [--scrub-every N] [--bit-rot-ppm N]
  gts serve    --store <store file> --workload <file>
               [--slots N] [--queue-cap N] [--tenant-queue-cap N]
               [--deadline NS] [--gpus N] [--streams N] [--strategy p|s]
               [--storage mem|ssd:N|hdd:N] [--device-memory BYTES]
               [--cache lru|fifo|random] [--host-threads N] [--json]
               [--counters-out FILE] [--jobs-out FILE]
               [--fault-seed N] [--retry-max N] [--backoff-base NS]
               [--breaker-threshold K] [--breaker-cooldown NS]
               [--shed-watermark PCT]
               [--journal-dir DIR] [--resume-serve true]
               [--crash-at-epoch K | --crash-mid-wal K | --crash-pre-apply K]
               [--wal-dir DIR]
  gts fsck     --store <store file> [--wal-dir DIR] [--checkpoint-dir DIR]
               [--journal-dir DIR] [--json]
  gts help

Edge files are the binary GTSEDGES format produced by `gts generate`, or
plain text 'src dst' lines. Store files are the GTSPAGES slotted-page
format of the paper's Section 2. `--trace-out` writes a chrome://tracing
/ Perfetto JSON timeline of the run (the paper's Fig. 4 pipeline).
`--host-threads` sets the real threads used for kernel execution on this
machine (default: all cores); results, traces and simulated times are
identical for every value. `--fault-seed` enables deterministic fault
injection (transient read errors, torn/corrupt pages, GPU copy/launch
faults) with that seed; recovered faults only add simulated time.
`--measure-host-phases true` records wall-clock host time in kernel
phase A vs accounting phase B under `host.phase_*_ns` counter keys
(wall-side, outside the determinism contract — like `ckpt.*`).

Checkpoint/restart: `--checkpoint-dir` snapshots resumable state every
`--checkpoint-every` sweeps (default 1) with crash-atomic writes;
`--resume true` restarts from the latest valid snapshot there. The
watchdog budgets `--sweep-deadline` / `--run-budget` (simulated ns) abort
an overrunning run with exit code 4 after flushing a final checkpoint and
the trace. `--crash-at-sweep K` / `--crash-mid-write K` inject a
deterministic kill at (or during the snapshot write of) sweep K's
boundary, for kill-and-resume chaos testing. `--counters-out` writes the
final counter registry as sorted 'key value' lines, also on failure.

Live topology: `--mutate-at K` applies a batched edge mutation at the
boundary of sweep K while the query runs (Sec. 2's slotted pages are
rewritten in place, with delta pages on slot overflow, and the store
epoch bumps so checkpoints from before the batch refuse a stale resume).
The batch is generated deterministically from `--mutate-seed`:
`--mutate-inserts` random edge insertions (default 64) plus
`--mutate-deletes` deletions of existing edges (default 0). Results are
identical at every `--host-threads` value; progress is visible in the
`mut.*` counters.

Serve mode: `gts serve` runs a scripted multi-tenant workload (one job
per line: `at=<ns> tenant=<id> job=<algorithm> [source=N] [iters=N]
[k=N] [mutate-at=K inserts=N deletes=N seed=N]`, `#` comments) through
a long-lived engine over the shared store. `--slots` service slots are
multiplexed FIFO on the simulated clock; admission control bounds the
shared queue (`--queue-cap`), each tenant's share (`--tenant-queue-cap`)
and the tolerated wait (`--deadline`, simulated ns). Mutating jobs
serialise through the epoch pipeline as an all-slots barrier. Every
job's report and counters are byte-identical to the same job run solo,
at any `--host-threads`. `--jobs-out` writes one record per job plus its
full counter registry (what the CI serve-smoke job diffs across thread
counts); `--counters-out` writes the service-level registry, including
per-class `serve.lat.*` latency percentiles and the per-tenant
`tenant.<id>.cache.*` rollup.

Serve resilience: `--fault-seed` arms a service fault template — every
(job, attempt) execution derives its own fault domain from that one
seed, so a fault in one tenant's job never perturbs another's counters.
The serve template uses GPU copy/launch fault rates with no lane-level
retries, so failures surface to the service layer as typed
`status=failed` records instead of being healed invisibly. `--retry-max`
re-admits failed read jobs with capped exponential backoff
(`--backoff-base`, simulated ns, jittered per job) until quarantine
(`status=quarantined`, `serve.quarantine.*` counters).
`--breaker-threshold K` trips a per-tenant circuit breaker after K
consecutive failures, shedding that tenant's arrivals
(`dropped:breaker_open`) until `--breaker-cooldown` elapses.
`--shed-watermark PCT` arms overload shedding: when queue occupancy or
projected deadline consumption crosses a job's priority-scaled
watermark the job is dropped (`dropped:shed`, `serve.shed.*` counters);
higher `prio=` classes in the workload survive longer.

Serve recovery: `--journal-dir` keeps a crash-consistent service
journal (JRNL1 records over the checkpoint store's atomic writes);
`--resume-serve true` resumes a killed daemon from it — settled jobs
are not re-run (`serve.resume.cached`) and the outputs are
byte-identical to an uncrashed run, modulo the wall-side
`serve.journal.*` / `serve.resume.*` keys. `--crash-at-epoch K` injects
a deterministic kill right before the service applies its K-th epoch
bump (exit code 4), for kill-and-resume chaos testing.

Durability: `--wal-dir` keeps a mutation write-ahead log for live runs —
every batch is sealed into the log (fsync) before it touches the store,
so a `--resume true` run whose crash landed between a checkpoint and the
next boundary rolls the store forward by replaying the logged bytes
(`wal.*` counters) instead of refusing with a fingerprint mismatch.
`--crash-mid-wal K` / `--crash-pre-apply K` kill sweep K's boundary
mid-append (torn frame) or after the seal but before the apply, for
kill-and-recover chaos testing. `--scrub-every N` walks every at-rest
page each N sweeps verifying trailer checksums, repairing detections
from the in-memory copy and routing them through drive quarantine
(`scrub.*` counters); `--bit-rot-ppm` arms the seeded rot injector that
gives the scrubber something to find. `gts serve --wal-dir` logs
mutating jobs through the same path, binds the journal header to the
log, and re-derives journaled epoch bumps from the logged bytes on
`--resume-serve` (`serve.wal.replayed`).

`gts fsck` verifies artifacts offline and cross-checks every pair it is
given: store page trailers and the RVT, the WAL chain and its
replayability onto the store, checkpoint manifest fallbacks
(`ckpt.manifest.skipped`) and snapshot reachability through the log, and
the serve journal's store/WAL bindings. One line per finding; exit 0
when clean, 3 when an artifact is unreadable, 4 when findings exist.

Exit codes: 0 success, 2 usage error, 3 I/O failure, 4 engine failure.";

/// Dispatch the command line.
pub fn dispatch(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    match args.positional(0) {
        Some("generate") => generate(&args),
        Some("build") => build(&args),
        Some("info") => info(&args),
        Some("run") => run(&args),
        Some("serve") => serve_cmd(&args),
        Some("fsck") => fsck(&args),
        Some("help") | None => {
            outln!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    }
}

fn generate(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "kind",
        "out",
        "scale",
        "edge-factor",
        "vertices",
        "edges",
        "seed",
    ])?;
    let kind = args.required("kind")?;
    let out = args.required("out")?;
    let seed = args.get_or("seed", 0x6715_2016u64)?;
    let graph: EdgeList = match kind {
        "rmat" => {
            let scale = args.get_or("scale", 16u32)?;
            let ef = args.get_or("edge-factor", 16u32)?;
            Rmat::new(scale)
                .with_edge_factor(ef)
                .with_seed(seed)
                .generate()
        }
        "erdos" => {
            let n = args.get_or("vertices", 1u32 << 16)?;
            let m = args.get_or("edges", 1usize << 20)?;
            erdos_renyi(n, m, seed)
        }
        "web" => {
            let n = args.get_or("vertices", 1u32 << 16)?;
            let communities = (n / 512).max(2);
            web_like(communities, n / communities, 4, seed)
        }
        "twitter" => Dataset::TwitterLike.generate(),
        "uk2007" => Dataset::Uk2007Like.generate(),
        "yahooweb" => Dataset::YahooWebLike.generate(),
        other => return Err(CliError::Usage(format!("unknown graph kind {other:?}"))),
    };
    edgelist::write(&graph, out).map_err(|e| CliError::Io(e.to_string()))?;
    outln!(
        "wrote {} vertices, {} edges to {out}",
        graph.num_vertices,
        graph.num_edges()
    );
    Ok(())
}

fn build(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["graph", "out", "page-size", "p", "q"])?;
    let graph = edgelist::read(args.required("graph")?).map_err(|e| CliError::Io(e.to_string()))?;
    let out = args.required("out")?;
    let page_size = args.get_or("page-size", 64 * 1024usize)?;
    let p = args.get_or("p", 2u8)?;
    let q = args.get_or("q", 2u8)?;
    let cfg = PageFormatConfig::new(PhysicalIdConfig::new(p, q), page_size);
    let store = build_graph_store(&graph, cfg).map_err(|e| e.to_string())?;
    save_store(&store, out).map_err(|e| CliError::Io(e.to_string()))?;
    outln!(
        "built {}: {} SP + {} LP pages of {} B ({:.1} MiB topology)",
        out,
        store.small_pids().len(),
        store.large_pids().len(),
        page_size,
        store.topology_bytes() as f64 / (1 << 20) as f64
    );
    Ok(())
}

fn info(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[])?;
    let path = args.positional(1).ok_or("usage: gts info <store file>")?;
    let store = load_store(path).map_err(|e| CliError::Io(e.to_string()))?;
    let cfg = store.cfg();
    outln!("store:     {path}");
    outln!(
        "format:    {} pages of {} B, physical ids {}",
        store.num_pages(),
        cfg.page_size,
        cfg.id
    );
    outln!(
        "graph:     {} vertices, {} edges",
        store.num_vertices(),
        store.num_edges()
    );
    outln!(
        "pages:     {} small, {} large",
        store.small_pids().len(),
        store.large_pids().len()
    );
    outln!("topology:  {} bytes", store.topology_bytes());
    for (name, wa) in [
        ("BFS", gts_core::attrs::AlgorithmKind::Bfs),
        ("PageRank", gts_core::attrs::AlgorithmKind::PageRank),
        ("SSSP", gts_core::attrs::AlgorithmKind::Sssp),
        ("CC", gts_core::attrs::AlgorithmKind::ConnectedComponents),
    ] {
        let bytes = wa.wa_bytes(store.num_vertices());
        outln!(
            "WA {name:<9} {bytes} bytes ({:.1} % of topology)",
            bytes as f64 / store.topology_bytes() as f64 * 100.0
        );
    }
    Ok(())
}

fn parse_storage(s: &str) -> Result<StorageLocation, String> {
    if s == "mem" {
        return Ok(StorageLocation::InMemory);
    }
    if let Some(n) = s.strip_prefix("ssd:") {
        return Ok(StorageLocation::Ssds(
            n.parse().map_err(|_| format!("bad ssd count {n:?}"))?,
        ));
    }
    if let Some(n) = s.strip_prefix("hdd:") {
        return Ok(StorageLocation::Hdds(
            n.parse().map_err(|_| format!("bad hdd count {n:?}"))?,
        ));
    }
    Err(format!("bad --storage {s:?} (mem | ssd:N | hdd:N)"))
}

/// The `--checkpoint-dir` / `--checkpoint-every` / `--resume` trio.
/// `--checkpoint-every` and `--resume` are meaningless without a
/// directory, so they are usage errors on their own (typo protection).
fn parse_checkpoint(args: &Args) -> Result<Option<CheckpointConfig>, CliError> {
    let resume = match args.optional("resume") {
        None | Some("false") => false,
        Some("true") => true,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "bad --resume {other:?} (true | false)"
            )))
        }
    };
    let Some(dir) = args.optional("checkpoint-dir") else {
        if args.optional("checkpoint-every").is_some() || resume {
            return Err(CliError::Usage(
                "--checkpoint-every/--resume need --checkpoint-dir".into(),
            ));
        }
        return Ok(None);
    };
    let every: u32 = match args.optional("checkpoint-every") {
        None => 1,
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --checkpoint-every {v:?} (sweeps)"))?,
    };
    let ck = CheckpointConfig::new(dir, every);
    Ok(Some(if resume { ck.resuming() } else { ck }))
}

/// `--crash-at-sweep K` / `--crash-mid-write K` / `--crash-mid-wal K` /
/// `--crash-pre-apply K` — at most one. The WAL kinds kill inside the
/// log-before-apply window and are meaningless without `--wal-dir`
/// (there is no log to tear).
fn parse_crash_point(args: &Args) -> Result<Option<CrashPoint>, CliError> {
    let parse = |name: &str, v: &str| -> Result<u32, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(format!("bad --{name} {v:?} (sweep number)")))
    };
    let set: Vec<(&str, &str)> = [
        "crash-at-sweep",
        "crash-mid-write",
        "crash-mid-wal",
        "crash-pre-apply",
    ]
    .iter()
    .filter_map(|&name| args.optional(name).map(|v| (name, v)))
    .collect();
    if set.len() > 1 {
        let names: Vec<String> = set.iter().map(|(n, _)| format!("--{n}")).collect();
        return Err(CliError::Usage(format!(
            "{} are mutually exclusive (one crash point per run)",
            names.join(" and ")
        )));
    }
    let Some(&(name, v)) = set.first() else {
        return Ok(None);
    };
    let k = parse(name, v)?;
    let point = match name {
        "crash-at-sweep" => CrashPoint::AtSweep(k),
        "crash-mid-write" => CrashPoint::MidSnapshotWrite(k),
        "crash-mid-wal" => CrashPoint::MidWalAppend(k),
        "crash-pre-apply" => CrashPoint::BetweenLogAndApply(k),
        _ => unreachable!("crash flag list above is exhaustive"),
    };
    if matches!(
        point,
        CrashPoint::MidWalAppend(_) | CrashPoint::BetweenLogAndApply(_)
    ) && args.optional("wal-dir").is_none()
    {
        return Err(CliError::Usage(format!(
            "--{name} needs --wal-dir (there is no log to tear)"
        )));
    }
    Ok(Some(point))
}

/// `--scrub-every N`: background integrity scrub cadence in sweeps.
fn parse_scrub_every(args: &Args) -> Result<Option<u32>, CliError> {
    match args.optional("scrub-every") {
        None => Ok(None),
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(CliError::Usage(format!(
                "bad --scrub-every {v:?} (sweep cadence, >= 1)"
            ))),
        },
    }
}

/// The `--mutate-at` / `--mutate-inserts` / `--mutate-deletes` /
/// `--mutate-seed` quartet: one deterministic update-while-query batch
/// applied at the given sweep boundary via [`Gts::run_live`]. The batch
/// flags are meaningless without `--mutate-at`.
fn parse_mutation(args: &Args, store: &GraphStore) -> Result<Option<MutationSchedule>, CliError> {
    let Some(at) = args.optional("mutate-at") else {
        for flag in ["mutate-inserts", "mutate-deletes", "mutate-seed"] {
            if args.optional(flag).is_some() {
                return Err(CliError::Usage(format!("--{flag} needs --mutate-at")));
            }
        }
        return Ok(None);
    };
    let at: u32 = at
        .parse()
        .map_err(|_| CliError::Usage(format!("bad --mutate-at {at:?} (sweep number)")))?;
    let inserts = args.get_or("mutate-inserts", 64u64)?;
    let deletes = args.get_or("mutate-deletes", 0u64)?;
    let seed = args.get_or("mutate-seed", 0x6715_2016u64)?;
    // The same seeded generator serves workload `mutate-at=` lines, so a
    // serve job and its solo replay build the identical batch.
    let batch = seeded_batch(store, inserts, deletes, seed);
    Ok(Some(MutationSchedule::new().at(at, batch)))
}

/// The flags shared by `run` and `serve` that shape the engine itself:
/// GPU topology, streams, strategy, storage tier, device memory, cache
/// policy, host threads. Returns the builder so each command can stack
/// its own extras (faults, checkpoints, budgets) on top.
fn engine_config_builder(args: &Args) -> Result<gts_core::engine::GtsConfigBuilder, CliError> {
    let mut cfg_builder = GtsConfig::builder()
        .num_gpus(args.get_or("gpus", 1usize)?)
        .num_streams(args.get_or("streams", 16usize)?)
        .strategy(match args.optional("strategy").unwrap_or("p") {
            "p" => Strategy::Performance,
            "s" => Strategy::Scalability,
            other => return Err(CliError::Usage(format!("bad --strategy {other:?} (p | s)"))),
        })
        .storage(parse_storage(args.optional("storage").unwrap_or("mem"))?)
        .gpu(GpuConfig::titan_x().with_device_memory(args.get_or("device-memory", 12u64 << 30)?))
        .cache_policy(match args.optional("cache").unwrap_or("lru") {
            "lru" => CachePolicyKind::Lru,
            "fifo" => CachePolicyKind::Fifo,
            "random" => CachePolicyKind::Random,
            other => return Err(CliError::Usage(format!("bad --cache {other:?}"))),
        });
    if let Some(ht) = args.optional("host-threads") {
        cfg_builder = cfg_builder.host_threads(
            ht.parse()
                .map_err(|_| format!("bad --host-threads {ht:?}"))?,
        );
    }
    Ok(cfg_builder)
}

fn run(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "store",
        "source",
        "iterations",
        "k",
        "gpus",
        "streams",
        "strategy",
        "storage",
        "device-memory",
        "cache",
        "json",
        "trace-out",
        "host-threads",
        "measure-host-phases",
        "fault-seed",
        "checkpoint-dir",
        "checkpoint-every",
        "resume",
        "run-budget",
        "sweep-deadline",
        "crash-at-sweep",
        "crash-mid-write",
        "crash-mid-wal",
        "crash-pre-apply",
        "counters-out",
        "mutate-at",
        "mutate-inserts",
        "mutate-deletes",
        "mutate-seed",
        "wal-dir",
        "scrub-every",
        "bit-rot-ppm",
    ])?;
    let alg = args
        .positional(1)
        .ok_or("usage: gts run <algorithm> --store <file>")?;
    let mut store: GraphStore =
        load_store(args.required("store")?).map_err(|e| CliError::Io(e.to_string()))?;
    let mut schedule = parse_mutation(args, &store)?;
    let source = args.get_or("source", 0u64)?;
    let iterations = args.get_or("iterations", 10u32)?;
    if source >= store.num_vertices() {
        return Err(CliError::Usage(format!(
            "--source {source} out of range ({} vertices)",
            store.num_vertices()
        )));
    }

    let mut cfg_builder = engine_config_builder(args)?;
    if args
        .optional("measure-host-phases")
        .map(|v| v == "true")
        .unwrap_or(false)
    {
        cfg_builder = cfg_builder.measure_host_phases(true);
    }
    let mut faults = match args.optional("fault-seed") {
        Some(seed) => Some(FaultConfig::with_seed(
            seed.parse()
                .map_err(|_| format!("bad --fault-seed {seed:?}"))?,
        )),
        None => None,
    };
    if let Some(crash) = parse_crash_point(args)? {
        // A crash point needs a fault plan to live in; without an
        // explicit seed, use a quiet plan so the kill is the only fault.
        faults.get_or_insert_with(|| FaultConfig::quiet(0)).crash = Some(crash);
    }
    if let Some(ppm) = args.optional("bit-rot-ppm") {
        let ppm: u32 = ppm
            .parse()
            .map_err(|_| format!("bad --bit-rot-ppm {ppm:?} (parts per million)"))?;
        // Rot rides in a fault plan; a quiet one makes it the only fault.
        faults
            .get_or_insert_with(|| FaultConfig::quiet(0))
            .bit_rot_ppm = ppm;
    }
    cfg_builder = cfg_builder.faults(faults);
    if let Some(dir) = args.optional("wal-dir") {
        cfg_builder = cfg_builder.wal_dir(Some(dir.into()));
    }
    if let Some(every) = parse_scrub_every(args)? {
        cfg_builder = cfg_builder.scrub_every(Some(every));
    }
    if let Some(ck) = parse_checkpoint(args)? {
        cfg_builder = cfg_builder.checkpoint(Some(ck));
    }
    if let Some(ns) = args.optional("sweep-deadline") {
        let ns: u64 = ns
            .parse()
            .map_err(|_| format!("bad --sweep-deadline {ns:?} (simulated ns)"))?;
        cfg_builder = cfg_builder.sweep_deadline_ns(Some(ns));
    }
    if let Some(ns) = args.optional("run-budget") {
        let ns: u64 = ns
            .parse()
            .map_err(|_| format!("bad --run-budget {ns:?} (simulated ns)"))?;
        cfg_builder = cfg_builder.run_budget_ns(Some(ns));
    }
    let cfg = cfg_builder.build().map_err(|e| e.to_string())?;

    let n = store.num_vertices();
    let k = args.get_or("k", 2u32)?;
    let trace_out = args.optional("trace-out");
    let mut builder = Gts::builder().config(cfg);
    if trace_out.is_some() {
        // Spans cost memory proportional to pages streamed; only record
        // them when the user asked for a trace file.
        builder = builder.telemetry(Telemetry::with_spans());
    }
    let engine = builder.build().map_err(|e| e.to_string())?;
    let mut exec = |prog: &mut dyn GtsProgram| {
        let r = match schedule.take() {
            Some(s) => engine.run_live(&mut store, prog, s),
            None => engine.run(&store, prog),
        };
        r.map_err(|e| CliError::Engine(e.to_string()))
    };
    // Run the algorithm but hold the result: when the run fails mid-sweep
    // the engine still flushes its open spans and counters, and the
    // partial trace below is exactly the evidence needed to debug it.
    let outcome = (|| -> Result<_, CliError> {
        Ok(match alg {
            "bfs" => {
                let mut p = Bfs::new(n, source);
                let r = exec(&mut p)?;
                let reached = p.levels().iter().filter(|&&l| l != u16::MAX).count();
                (r, format!("{reached} vertices reached from {source}"))
            }
            "pagerank" => {
                let mut p = PageRank::new(n, iterations);
                let r = exec(&mut p)?;
                let top = top_vertex(p.ranks())
                    .map(|(v, s)| format!("top vertex {v} (score {s:.6})"))
                    .unwrap_or_default();
                (r, top)
            }
            "sssp" => {
                let mut p = Sssp::new(n, source);
                let r = exec(&mut p)?;
                let reached = p.distances().iter().filter(|&&d| d != u32::MAX).count();
                (r, format!("{reached} vertices reachable from {source}"))
            }
            "cc" => {
                let mut p = Cc::new(n);
                let r = exec(&mut p)?;
                let mut labels: Vec<u64> = p.labels().to_vec();
                labels.sort_unstable();
                labels.dedup();
                (r, format!("{} weakly connected components", labels.len()))
            }
            "bc" => {
                let mut p = Bc::new(n, source);
                let r = exec(&mut p)?;
                let top = top_vertex(p.centrality())
                    .map(|(v, s)| format!("most central vertex {v} (bc {s:.1})"))
                    .unwrap_or_default();
                (r, top)
            }
            "rwr" => {
                let mut p = Rwr::new(n, source, iterations);
                let r = exec(&mut p)?;
                let mut scored: Vec<(usize, f32)> =
                    p.scores().iter().copied().enumerate().collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                let near: Vec<String> = scored
                    .iter()
                    .take(4)
                    .map(|(v, s)| format!("{v}:{s:.4}"))
                    .collect();
                (r, format!("closest to {source}: {}", near.join(" ")))
            }
            "degrees" => {
                let mut p = Degrees::new(n);
                let r = exec(&mut p)?;
                let max = p.degrees().iter().max().copied().unwrap_or(0);
                (r, format!("max out-degree {max}"))
            }
            "kcore" => {
                let mut p = KCore::new(n, k);
                let r = exec(&mut p)?;
                (r, format!("{}-core has {} vertices", k, p.core_size()))
            }
            "radius" => {
                let mut p = RadiusEstimation::new(n);
                let r = exec(&mut p)?;
                (
                    r,
                    format!(
                        "estimated radius {:?}, diameter {}{}",
                        p.radius(),
                        p.diameter(),
                        if p.is_exact() { " (exact)" } else { "" }
                    ),
                )
            }
            other => return Err(CliError::Usage(format!("unknown algorithm {other:?}"))),
        })
    })();

    if let Some(path) = trace_out {
        std::fs::write(path, engine.telemetry().to_chrome_trace())
            .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
        outln!("trace:          {path} (load in ui.perfetto.dev or chrome://tracing)");
    }
    if let Some(path) = args.optional("counters-out") {
        // Written before the outcome propagates: a crashed/deadlined run's
        // counters are exactly what the kill-resume CI job diffs.
        let mut lines = String::new();
        for (k, v) in engine.telemetry().counters() {
            lines.push_str(&format!("{k} {v}\n"));
        }
        std::fs::write(path, lines).map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
    }
    let (report, summary) = outcome?;
    if args.optional("json").map(|v| v == "true").unwrap_or(false) {
        outln!("{}", report.to_json());
    } else {
        outln!("algorithm:      {}", report.algorithm);
        outln!("simulated time: {}", report.elapsed);
        outln!("sweeps:         {}", report.sweeps);
        outln!("pages streamed: {}", report.pages_streamed);
        outln!(
            "cache hits:     {} ({:.1} %)",
            report.cache_hits,
            report.cache_hit_rate * 100.0
        );
        outln!(
            "edges visited:  {} ({:.0} MTEPS)",
            report.edges_traversed,
            report.mteps()
        );
        outln!("result:         {summary}");
    }
    Ok(())
}

/// `--fault-seed` for serve mode. Unlike `run`, the serve template uses
/// GPU copy/launch rates with no lane-level retries: the default store
/// is in-memory (no device reads to fault), and healing is the service
/// layer's job — failures must surface as typed [`JobStatus::Failed`]
/// for retry/quarantine/breaker policy to act on, not vanish inside a
/// lane's own retry loop.
fn serve_fault_template(args: &Args) -> Result<Option<FaultConfig>, CliError> {
    match args.optional("fault-seed") {
        None => Ok(None),
        Some(seed) => {
            let seed: u64 = seed
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --fault-seed {seed:?}")))?;
            Ok(Some(FaultConfig {
                copy_fault_ppm: 60_000,
                launch_fault_ppm: 60_000,
                max_retries: 0,
                ..FaultConfig::with_seed(seed)
            }))
        }
    }
}

/// The retry/backoff, circuit-breaker, and shedding knobs; every flag
/// defaults to the policy being off.
fn serve_resilience(args: &Args) -> Result<ResilienceConfig, CliError> {
    let mut r = ResilienceConfig::default();
    r.retry_max = args.get_or("retry-max", r.retry_max)?;
    r.backoff_base_ns = args.get_or("backoff-base", r.backoff_base_ns)?;
    r.breaker_threshold = args.get_or("breaker-threshold", r.breaker_threshold)?;
    r.breaker_cooldown_ns = args.get_or("breaker-cooldown", r.breaker_cooldown_ns)?;
    if let Some(pct) = args.optional("shed-watermark") {
        r.shed_watermark_pct = Some(pct.parse().map_err(|_| {
            CliError::Usage(format!("bad --shed-watermark {pct:?} (percent 1-100)"))
        })?);
    }
    Ok(r)
}

/// `--journal-dir` / `--resume-serve`: the crash-consistent service
/// journal. Resuming without a journal directory is a usage error.
fn serve_journal(args: &Args) -> Result<Option<JournalConfig>, CliError> {
    let resume = args
        .optional("resume-serve")
        .map(|v| v == "true")
        .unwrap_or(false);
    match args.optional("journal-dir") {
        Some(dir) => {
            let mut j = JournalConfig::new(dir);
            j.resume = resume;
            Ok(Some(j))
        }
        None if resume => Err(CliError::Usage(
            "--resume-serve requires --journal-dir (nowhere to resume from)".into(),
        )),
        None => Ok(None),
    }
}

/// `--crash-at-epoch K` / `--crash-mid-wal K` / `--crash-pre-apply K`
/// for serve mode — at most one. The WAL kinds kill the daemon inside
/// the mutating job's log-before-apply window and need `--wal-dir`.
fn serve_crash_point(args: &Args) -> Result<Option<CrashPoint>, CliError> {
    let parse = |name: &str, v: &str, what: &str| -> Result<u32, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(format!("bad --{name} {v:?} ({what})")))
    };
    let set: Vec<(&str, &str)> = ["crash-at-epoch", "crash-mid-wal", "crash-pre-apply"]
        .iter()
        .filter_map(|&name| args.optional(name).map(|v| (name, v)))
        .collect();
    if set.len() > 1 {
        let names: Vec<String> = set.iter().map(|(n, _)| format!("--{n}")).collect();
        return Err(CliError::Usage(format!(
            "{} are mutually exclusive (one crash point per service)",
            names.join(" and ")
        )));
    }
    let Some(&(name, v)) = set.first() else {
        return Ok(None);
    };
    let point = match name {
        "crash-at-epoch" => CrashPoint::AtEpoch(parse(name, v, "epoch number")?),
        "crash-mid-wal" => CrashPoint::MidWalAppend(parse(name, v, "epoch number")?),
        "crash-pre-apply" => CrashPoint::BetweenLogAndApply(parse(name, v, "epoch number")?),
        _ => unreachable!("serve crash flag list above is exhaustive"),
    };
    if !matches!(point, CrashPoint::AtEpoch(_)) && args.optional("wal-dir").is_none() {
        return Err(CliError::Usage(format!(
            "--{name} needs --wal-dir (there is no log to tear)"
        )));
    }
    Ok(Some(point))
}

/// `gts serve`: a scripted multi-tenant workload through the long-lived
/// engine over the shared store. Scheduling runs on the simulated
/// clock, so every output is byte-identical at any `--host-threads`.
fn serve_cmd(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "store",
        "workload",
        "slots",
        "queue-cap",
        "tenant-queue-cap",
        "deadline",
        "gpus",
        "streams",
        "strategy",
        "storage",
        "device-memory",
        "cache",
        "host-threads",
        "json",
        "counters-out",
        "jobs-out",
        "fault-seed",
        "retry-max",
        "backoff-base",
        "breaker-threshold",
        "breaker-cooldown",
        "shed-watermark",
        "journal-dir",
        "resume-serve",
        "crash-at-epoch",
        "wal-dir",
        "crash-mid-wal",
        "crash-pre-apply",
    ])?;
    let mut store: GraphStore =
        load_store(args.required("store")?).map_err(|e| CliError::Io(e.to_string()))?;
    let path = args.required("workload")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("reading {path}: {e}")))?;
    let jobs =
        gts_serve::workload::parse(&text).map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
    let cfg = engine_config_builder(args)?
        .build()
        .map_err(|e| e.to_string())?;
    let engine = gts_core::Engine::new(cfg).map_err(|e| e.to_string())?;
    let deadline_ns = match args.optional("deadline") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bad --deadline {v:?} (simulated ns)"))?,
        ),
    };
    let serve_cfg = ServeConfig {
        slots: args.get_or("slots", 4usize)?,
        queue_capacity: args.get_or("queue-cap", 64usize)?,
        tenant_queue_capacity: args.get_or("tenant-queue-cap", 16usize)?,
        deadline_ns,
        faults: serve_fault_template(args)?,
        resilience: serve_resilience(args)?,
        journal: serve_journal(args)?,
        crash: serve_crash_point(args)?,
        wal_dir: args.optional("wal-dir").map(std::path::PathBuf::from),
    };
    if serve_cfg.journal.is_none() && serve_cfg.crash.is_some() {
        return Err(CliError::Usage(
            "serve crash points require --journal-dir (a crash without a journal cannot resume)"
                .into(),
        ));
    }
    let out = serve(&engine, &mut store, &jobs, &serve_cfg).map_err(|e| match e {
        ServeError::Config(_) | ServeError::Workload(_) => CliError::Usage(e.to_string()),
        ServeError::Journal(_) => CliError::Io(e.to_string()),
        other => CliError::Engine(other.to_string()),
    })?;
    write_serve_outputs(args, &out)?;
    if args.optional("json").map(|v| v == "true").unwrap_or(false) {
        outln!(
            "{{\"jobs\":{},\"completed\":{},\"dropped\":{},\"failed\":{},\"quarantined\":{},\"epochs\":{},\"makespan_ns\":{},\"latency\":{}}}",
            out.jobs.len(),
            out.completed,
            out.dropped,
            out.failed,
            out.quarantined,
            out.telemetry.counter("serve.epochs"),
            out.makespan_ns,
            out.telemetry.histograms_to_json()
        );
    } else {
        outln!(
            "jobs:       {} ({} completed, {} dropped, {} failed, {} quarantined)",
            out.jobs.len(),
            out.completed,
            out.dropped,
            out.failed,
            out.quarantined
        );
        outln!("slots:      {}", serve_cfg.slots);
        outln!(
            "epochs:     {} mutation batches applied",
            out.telemetry.counter("serve.epochs")
        );
        outln!("makespan:   {} simulated ns", out.makespan_ns);
        for (key, s) in out.telemetry.histogram_summaries() {
            outln!(
                "{key}: n={} p50={} p95={} p99={} ns",
                s.count,
                s.p50,
                s.p95,
                s.p99
            );
        }
    }
    Ok(())
}

/// One inconsistency `gts fsck` found: which artifact it lives in and
/// what disagreed.
struct Finding {
    artifact: &'static str,
    detail: String,
}

/// `gts fsck`: offline cross-artifact verifier. Loads the store and,
/// for every artifact directory it is given, verifies it internally and
/// cross-checks it against everything else on the table:
///
/// - store: every page's at-rest trailer checksum, and the RVT's shape
///   (one entry per page; `LP_RANGE` present exactly on Large Pages);
/// - `--wal-dir`: the log's header/trailer chain (torn tails included),
///   its identity binding to the store, and that every record replays
///   onto the store in epoch order;
/// - `--checkpoint-dir`: manifest entries silently skipped as torn or
///   unreadable, and that the newest snapshot's store fingerprint is
///   reachable from the store by replaying the log;
/// - `--journal-dir`: the serve journal's store binding, its WAL-epoch
///   binding, and that every journaled epoch lies inside the log's
///   chain.
///
/// Nothing is modified (the WAL's torn tail is *noted*, not repaired).
/// One line per finding; exit 0 when clean, 3 when an artifact cannot
/// be read at all, 4 when findings exist.
fn fsck(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["store", "wal-dir", "checkpoint-dir", "journal-dir", "json"])?;
    let store: GraphStore =
        load_store(args.required("store")?).map_err(|e| CliError::Io(e.to_string()))?;
    let mut findings: Vec<Finding> = Vec::new();
    let finding = |artifact: &'static str, detail: String| Finding { artifact, detail };
    let mut checked: Vec<&'static str> = vec!["store"];

    // --- Store: at-rest page trailers, then the RVT's shape.
    for pid in 0..store.num_pages() {
        if !store.page(pid).checksum_ok() {
            findings.push(finding(
                "store",
                format!("page {pid}: trailer checksum mismatch"),
            ));
        }
    }
    if store.rvt().len() as u64 != store.num_pages() {
        findings.push(finding(
            "store",
            format!(
                "rvt covers {} pages, store has {}",
                store.rvt().len(),
                store.num_pages()
            ),
        ));
    } else {
        for &pid in store.large_pids() {
            if store.rvt().entry(pid).lp_range.is_none() {
                findings.push(finding(
                    "store",
                    format!("rvt: large page {pid} lacks its LP_RANGE"),
                ));
            }
        }
        for &pid in store.small_pids() {
            if store.rvt().entry(pid).lp_range.is_some() {
                findings.push(finding(
                    "store",
                    format!("rvt: small page {pid} carries an LP_RANGE"),
                ));
            }
        }
    }

    // --- WAL: chain integrity, identity binding, replayability. The
    // stepwise fingerprints double as the checkpoint reachability set.
    let mut wal: Option<gts_storage::Wal> = None;
    let mut replay_fps: Option<Vec<u64>> = None;
    if let Some(dir) = args.optional("wal-dir") {
        checked.push("wal");
        match gts_storage::Wal::load(dir) {
            Err(gts_storage::WalError::Io { op, path, source }) => {
                return Err(CliError::Io(format!(
                    "wal: {op} {}: {source}",
                    path.display()
                )));
            }
            Err(e) => findings.push(finding("wal", e.to_string())),
            Ok(w) => {
                if w.truncated_tail() > 0 {
                    findings.push(finding(
                        "wal",
                        format!(
                            "torn tail: {} trailing bytes form no sealed record",
                            w.truncated_tail()
                        ),
                    ));
                }
                let cfg = store.cfg();
                let want = gts_storage::store_identity_fp(
                    store.num_vertices(),
                    cfg.page_size as u32,
                    cfg.id.p,
                    cfg.id.q,
                );
                if w.header().store_id_fp != want {
                    findings.push(finding(
                        "wal",
                        format!(
                            "log belongs to a different store (log {:#x}, store {want:#x})",
                            w.header().store_id_fp
                        ),
                    ));
                } else {
                    if w.header().base_epoch != store.epoch() {
                        findings.push(finding(
                            "wal",
                            format!(
                                "log base epoch {} != store epoch {}",
                                w.header().base_epoch,
                                store.epoch()
                            ),
                        ));
                    }
                    let mut scratch = store.clone();
                    let mut fps = vec![gts_core::store_fingerprint(&scratch)];
                    for (i, rec) in w.records().iter().enumerate() {
                        match scratch.apply_mutations(&rec.batch) {
                            Ok(_) => fps.push(gts_core::store_fingerprint(&scratch)),
                            Err(e) => {
                                findings.push(finding(
                                    "wal",
                                    format!(
                                        "record {i} (epoch {} -> {}) does not apply \
                                         onto the store: {e}",
                                        rec.pre_epoch, rec.post_epoch
                                    ),
                                ));
                                break;
                            }
                        }
                    }
                    replay_fps = Some(fps);
                }
                wal = Some(w);
            }
        }
    }

    // --- Checkpoints: surfaced manifest fallbacks, then snapshot
    // reachability from the store through the log.
    if let Some(dir) = args.optional("checkpoint-dir") {
        checked.push("checkpoint");
        if !std::path::Path::new(dir).is_dir() {
            return Err(CliError::Io(format!("checkpoint dir {dir}: not found")));
        }
        let ck = gts_ckpt::CkptStore::open(dir).map_err(|e| CliError::Io(e.to_string()))?;
        match ck.load_latest_with_skipped() {
            Err(e @ gts_ckpt::CkptError::Io { .. }) => return Err(CliError::Io(e.to_string())),
            Err(e) => findings.push(finding("checkpoint", e.to_string())),
            Ok((seq, snap, skipped)) => {
                for name in skipped {
                    findings.push(finding(
                        "checkpoint",
                        format!("manifest entry {name} skipped (missing, torn, or corrupt)"),
                    ));
                }
                match gts_core::snapshot_progress(&snap) {
                    Err(e) => findings.push(finding(
                        "checkpoint",
                        format!("snapshot {seq} does not decode: {e}"),
                    )),
                    Ok((target_fp, sweep)) => {
                        if let Some(fps) = &replay_fps {
                            if !fps.contains(&target_fp) {
                                findings.push(finding(
                                    "checkpoint",
                                    format!(
                                        "snapshot {seq} (sweep {sweep}) records store \
                                         fingerprint {target_fp:#x}, unreachable from the \
                                         store through the log"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // --- Serve journal: store binding, WAL-epoch binding, and every
    // journaled epoch inside the log's chain.
    if let Some(dir) = args.optional("journal-dir") {
        checked.push("journal");
        if !std::path::Path::new(dir).is_dir() {
            return Err(CliError::Io(format!("journal dir {dir}: not found")));
        }
        match gts_serve::inspect_journal(dir) {
            Err(e) => findings.push(finding("journal", e.to_string())),
            Ok(info) => {
                for name in &info.skipped {
                    findings.push(finding(
                        "journal",
                        format!("manifest entry {name} skipped (missing, torn, or corrupt)"),
                    ));
                }
                let want = gts_serve::store_binding_fp(&store);
                if info.store_fp != want {
                    findings.push(finding(
                        "journal",
                        format!(
                            "bound to a different store (journal {:#x}, this store {want:#x})",
                            info.store_fp
                        ),
                    ));
                }
                match (&wal, info.wal_fp) {
                    (Some(w), fp) => {
                        let want = gts_ckpt::fnv1a(&w.header().base_epoch.to_le_bytes());
                        if fp != want {
                            findings.push(finding(
                                "journal",
                                format!("WAL binding mismatch (journal {fp:#x}, log {want:#x})"),
                            ));
                        }
                        let base = w.header().base_epoch;
                        let tip = base + w.records().len() as u64;
                        for &e in &info.epochs {
                            if e <= base || e > tip {
                                findings.push(finding(
                                    "journal",
                                    format!(
                                        "journaled epoch {e} outside the log's chain \
                                         ({base}, {tip}]"
                                    ),
                                ));
                            }
                        }
                    }
                    (None, fp) if fp != 0 => findings.push(finding(
                        "journal",
                        format!(
                            "journal binds a mutation WAL ({fp:#x}) but no --wal-dir \
                             was given to check it against"
                        ),
                    )),
                    (None, _) => {}
                }
            }
        }
    }

    // --- Report.
    let json = args.optional("json").map(|v| v == "true").unwrap_or(false);
    if json {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let list: Vec<String> = findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"artifact\":\"{}\",\"detail\":\"{}\"}}",
                    f.artifact,
                    esc(&f.detail)
                )
            })
            .collect();
        let names: Vec<String> = checked.iter().map(|c| format!("\"{c}\"")).collect();
        outln!(
            "{{\"checked\":[{}],\"findings\":[{}]}}",
            names.join(","),
            list.join(",")
        );
    } else {
        for f in &findings {
            outln!("fsck: {}: {}", f.artifact, f.detail);
        }
        if findings.is_empty() {
            outln!("fsck: clean ({})", checked.join(" + "));
        }
    }
    if findings.is_empty() {
        Ok(())
    } else {
        Err(CliError::Engine(format!(
            "fsck: {} finding(s) across {}",
            findings.len(),
            checked.join(" + ")
        )))
    }
}

/// `--jobs-out` (one record line plus the full counter registry per job
/// — exactly what the CI serve-smoke job diffs across host-thread
/// counts) and `--counters-out` (the service-level registry as sorted
/// `key value` lines, percentile counters included).
fn write_serve_outputs(args: &Args, out: &ServeOutcome) -> Result<(), CliError> {
    if let Some(path) = args.optional("jobs-out") {
        let mut lines = String::new();
        for j in &out.jobs {
            lines.push_str(&format!(
                "job={} tenant={} class={} mutating={} arrival={} status={} \
                 start={} finish={} service={} wait={} latency={} \
                 attempts={} result={:#018x}\n",
                j.index,
                j.tenant,
                j.class,
                j.mutating,
                j.arrival_ns,
                status_word(&j.status),
                j.start_ns,
                j.finish_ns,
                j.service_ns,
                j.wait_ns(),
                j.latency_ns(),
                j.attempts,
                j.result_fp
            ));
            for (k, v) in &j.counters {
                lines.push_str(&format!("job.{}.{k} {v}\n", j.index));
            }
        }
        std::fs::write(path, lines).map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
    }
    if let Some(path) = args.optional("counters-out") {
        let mut lines = String::new();
        for (k, v) in out.telemetry.counters() {
            lines.push_str(&format!("{k} {v}\n"));
        }
        std::fs::write(path, lines).map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
    }
    Ok(())
}

fn status_word(s: &JobStatus) -> &'static str {
    match s {
        JobStatus::Completed => "completed",
        JobStatus::Dropped(ServeError::QueueFull { .. }) => "dropped:queue_full",
        JobStatus::Dropped(ServeError::Rejected { .. }) => "dropped:rejected",
        JobStatus::Dropped(ServeError::Deadline { .. }) => "dropped:deadline",
        JobStatus::Dropped(ServeError::BreakerOpen { .. }) => "dropped:breaker_open",
        JobStatus::Dropped(ServeError::Shed { .. }) => "dropped:shed",
        JobStatus::Dropped(_) => "dropped",
        JobStatus::Failed { .. } => "failed",
        JobStatus::Quarantined { .. } => "quarantined",
    }
}

/// Highest-scoring vertex (NaN-safe via total order); `None` on empty.
fn top_vertex(scores: &[f32]) -> Option<(usize, f32)> {
    scores
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("gts-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_build_info_run_pipeline() {
        let el = tmp("g.el");
        let st = tmp("g.gts");
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "9", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        dispatch(&sv(&["info", &st])).unwrap();
        for alg in [
            "bfs", "pagerank", "sssp", "cc", "bc", "rwr", "degrees", "kcore", "radius",
        ] {
            dispatch(&sv(&["run", alg, "--store", &st, "--iterations", "2"]))
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
        // Out-of-core configuration also works end to end.
        dispatch(&sv(&[
            "run",
            "pagerank",
            "--store",
            &st,
            "--iterations",
            "2",
            "--gpus",
            "2",
            "--strategy",
            "s",
            "--storage",
            "ssd:2",
        ]))
        .unwrap();
        // Explicit host-thread counts run fine (determinism is asserted by
        // the engine and integration tests; this checks flag plumbing).
        dispatch(&sv(&[
            "run",
            "pagerank",
            "--store",
            &st,
            "--iterations",
            "2",
            "--host-threads",
            "2",
        ]))
        .unwrap();
        assert!(dispatch(&sv(&[
            "run",
            "bfs",
            "--store",
            &st,
            "--host-threads",
            "zero"
        ]))
        .is_err());
        // --trace-out writes a chrome-trace JSON file.
        let tr = tmp("trace.json");
        dispatch(&sv(&[
            "run",
            "bfs",
            "--store",
            &st,
            "--streams",
            "4",
            "--trace-out",
            &tr,
        ]))
        .unwrap();
        let trace = std::fs::read_to_string(&tr).unwrap();
        assert!(trace.contains("traceEvents"));
        assert!(trace.contains("\"ph\":\"X\""));
        // Fault injection is plumbed through: an injected run completes
        // (recovered faults only add simulated time).
        dispatch(&sv(&[
            "run",
            "pagerank",
            "--store",
            &st,
            "--iterations",
            "2",
            "--storage",
            "ssd:2",
            "--fault-seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            dispatch(&sv(&["run", "bfs", "--store", &st, "--fault-seed", "x"]))
                .unwrap_err()
                .exit_code(),
            EXIT_USAGE
        );
        // A failed run still writes the partial trace (engine failures get
        // their own exit code, distinct from usage and I/O errors).
        let failed_tr = tmp("failed-trace.json");
        let err = dispatch(&sv(&[
            "run",
            "bfs",
            "--store",
            &st,
            "--device-memory",
            "1024",
            "--trace-out",
            &failed_tr,
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), EXIT_ENGINE, "{err}");
        let partial = std::fs::read_to_string(&failed_tr).unwrap();
        assert!(partial.contains("traceEvents"));
        std::fs::remove_file(&failed_tr).ok();
        std::fs::remove_file(&tr).ok();
        std::fs::remove_file(&el).ok();
        std::fs::remove_file(&st).ok();
    }

    #[test]
    fn helpful_errors_with_classified_exit_codes() {
        for usage in [
            sv(&["frobnicate"]),
            sv(&["run", "bfs"]),
            sv(&["generate", "--kind", "nope", "--out", "/tmp/x"]),
        ] {
            let err = dispatch(&usage).unwrap_err();
            assert_eq!(err.exit_code(), EXIT_USAGE, "{err}");
        }
        let err = dispatch(&sv(&["run", "bfs", "--store", "/nonexistent-gts-file"])).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_IO);
        let msg = err.to_string();
        assert!(msg.contains("i/o") || msg.contains("No such file"), "{msg}");
    }

    /// Every malformed checkpoint/watchdog/chaos flag is a typed usage
    /// error (exit 2) naming the flag — one case per flag.
    #[test]
    fn checkpoint_and_watchdog_flags_validate() {
        let cases: &[(&[&str], &str)] = &[
            (&["--checkpoint-every", "x"], "--checkpoint-every"),
            (&["--checkpoint-every", "2"], "--checkpoint-dir"),
            (&["--resume", "true"], "--checkpoint-dir"),
            (&["--checkpoint-dir", "d", "--resume", "yes"], "--resume"),
            (
                &["--checkpoint-dir", "d", "--checkpoint-every", "0"],
                "checkpoint.every",
            ),
            (&["--run-budget", "soon"], "--run-budget"),
            (&["--run-budget", "0"], "run_budget_ns"),
            (&["--sweep-deadline", "-1"], "--sweep-deadline"),
            (&["--sweep-deadline", "0"], "sweep_deadline_ns"),
            (&["--crash-at-sweep", "x"], "--crash-at-sweep"),
            (&["--crash-mid-write", "x"], "--crash-mid-write"),
            (
                &["--crash-at-sweep", "2", "--crash-mid-write", "4"],
                "mutually exclusive",
            ),
            (&["--mutate-at", "x"], "--mutate-at"),
            (&["--mutate-inserts", "5"], "--mutate-at"),
            (&["--mutate-deletes", "5"], "--mutate-at"),
            (&["--mutate-seed", "5"], "--mutate-at"),
            (
                &["--wal-dir", "d", "--crash-mid-wal", "x"],
                "--crash-mid-wal",
            ),
            (&["--crash-mid-wal", "3"], "--wal-dir"),
            (&["--crash-pre-apply", "3"], "--wal-dir"),
            (
                &[
                    "--wal-dir",
                    "d",
                    "--crash-at-sweep",
                    "2",
                    "--crash-mid-wal",
                    "3",
                ],
                "mutually exclusive",
            ),
            (&["--scrub-every", "x"], "--scrub-every"),
            (&["--scrub-every", "0"], "--scrub-every"),
            (&["--bit-rot-ppm", "lots"], "--bit-rot-ppm"),
        ];
        // A real store so validation (not a missing file) is what fails.
        let el = tmp("v.el");
        let st = tmp("v.gts");
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "8", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        for (flags, needle) in cases {
            let mut argv = sv(&["run", "bfs", "--store", &st]);
            argv.extend(sv(flags));
            let err = dispatch(&argv).unwrap_err();
            assert_eq!(err.exit_code(), EXIT_USAGE, "{flags:?}: {err}");
            assert!(
                err.to_string().contains(needle),
                "{flags:?}: error {err:?} does not name {needle:?}"
            );
        }
        std::fs::remove_file(&el).ok();
        std::fs::remove_file(&st).ok();
    }

    /// The flags work end to end: checkpoint, injected kill (engine exit
    /// code), resume to completion, counters dumped as sorted lines.
    #[test]
    fn kill_and_resume_through_the_cli() {
        let el = tmp("kr.el");
        let st = tmp("kr.gts");
        let ck = tmp("kr-ckpts");
        let counters = tmp("kr-counters.txt");
        std::fs::remove_dir_all(&ck).ok();
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "9", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        let run = |extra: &[&str]| {
            let mut argv = sv(&[
                "run",
                "pagerank",
                "--store",
                &st,
                "--iterations",
                "6",
                "--storage",
                "ssd:2",
                "--checkpoint-dir",
                &ck,
                "--checkpoint-every",
                "2",
            ]);
            argv.extend(sv(extra));
            dispatch(&argv)
        };
        let err = run(&["--crash-at-sweep", "3"]).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_ENGINE, "{err}");
        assert!(err.to_string().contains("injected crash"), "{err}");
        run(&["--resume", "true", "--counters-out", &counters]).unwrap();
        let dump = std::fs::read_to_string(&counters).unwrap();
        let keys: Vec<&str> = dump.lines().map(|l| l.split_once(' ').unwrap().0).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "counters must be sorted");
        assert!(dump.contains("run.sweeps "), "{dump}");
        // A deadline abort is the engine's typed failure, trace intact.
        let tr = tmp("kr-deadline-trace.json");
        let err = run(&["--run-budget", "1", "--trace-out", &tr]).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_ENGINE, "{err}");
        assert!(err.to_string().contains("run_budget_ns"), "{err}");
        assert!(std::fs::read_to_string(&tr)
            .unwrap()
            .contains("traceEvents"));
        std::fs::remove_file(&tr).ok();
        std::fs::remove_file(&counters).ok();
        std::fs::remove_file(&el).ok();
        std::fs::remove_file(&st).ok();
        std::fs::remove_dir_all(&ck).ok();
    }

    /// The durability surface end to end: a mid-WAL-append kill leaves a
    /// torn tail that `gts fsck` reports (exit 4), resume repairs and
    /// completes, and fsck then signs off on every artifact (exit 0).
    #[test]
    fn wal_crash_fsck_and_recover_through_the_cli() {
        let el = tmp("wal.el");
        let st = tmp("wal.gts");
        let ck = tmp("wal-ckpts");
        let wd = tmp("wal-log");
        std::fs::remove_dir_all(&ck).ok();
        std::fs::remove_dir_all(&wd).ok();
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "8", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        let run = |extra: &[&str]| {
            let mut argv = sv(&[
                "run",
                "pagerank",
                "--store",
                &st,
                "--iterations",
                "6",
                "--checkpoint-dir",
                &ck,
                "--checkpoint-every",
                "2",
                "--wal-dir",
                &wd,
                "--mutate-at",
                "3",
                "--mutate-inserts",
                "32",
            ]);
            argv.extend(sv(extra));
            dispatch(&argv)
        };
        let err = run(&["--crash-mid-wal", "3"]).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_ENGINE, "{err}");
        assert!(err.to_string().contains("injected crash"), "{err}");
        // fsck sees the torn tail the kill left behind.
        let fsck = |extra: &[&str]| {
            let mut argv = sv(&["fsck", "--store", &st]);
            argv.extend(sv(extra));
            dispatch(&argv)
        };
        let err = fsck(&["--wal-dir", &wd, "--checkpoint-dir", &ck]).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_ENGINE, "{err}");
        assert!(err.to_string().contains("finding"), "{err}");
        // Resume repairs the tail, replays the log, and finishes the run.
        run(&["--resume", "true"]).unwrap();
        fsck(&["--wal-dir", &wd, "--checkpoint-dir", &ck]).unwrap();
        // fsck's own argument and I/O failures stay classified.
        let err = dispatch(&sv(&["fsck"])).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_USAGE, "{err}");
        let err = dispatch(&sv(&["fsck", "--store", "/nonexistent-gts-file"])).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_IO, "{err}");
        let err = fsck(&["--wal-dir", &tmp("wal-no-such-log")]).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_IO, "{err}");
        std::fs::remove_file(&el).ok();
        std::fs::remove_file(&st).ok();
        std::fs::remove_dir_all(&ck).ok();
        std::fs::remove_dir_all(&wd).ok();
    }

    /// A mutate-while-sweep run is byte-identical at any host-thread
    /// count — the CI determinism job diffs exactly these counter dumps.
    #[test]
    fn mutate_while_sweep_is_thread_count_invariant() {
        let el = tmp("mut.el");
        let st = tmp("mut.gts");
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "9", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        let dump = |threads: &str, out: &str| {
            dispatch(&sv(&[
                "run",
                "bfs",
                "--store",
                &st,
                "--mutate-at",
                "1",
                "--mutate-inserts",
                "48",
                "--mutate-deletes",
                "8",
                "--host-threads",
                threads,
                "--counters-out",
                out,
            ]))
            .unwrap();
            std::fs::read_to_string(out).unwrap()
        };
        let c1 = tmp("mut-counters-1.txt");
        let c4 = tmp("mut-counters-4.txt");
        let one = dump("1", &c1);
        let four = dump("4", &c4);
        assert_eq!(one, four, "mutated run must not depend on host threads");
        assert!(one.contains("mut.batches 1"), "{one}");
        assert!(one.contains("mut.inserted 48"), "{one}");
        assert!(one.contains("mut.deleted 8"), "{one}");
        assert!(one.contains("mut.epoch 1"), "{one}");
        for p in [&el, &st, &c1, &c4] {
            std::fs::remove_file(p).ok();
        }
    }

    /// Every malformed `serve` flag is a typed usage error (exit 2)
    /// naming the flag or field — one case per flag, mirroring the
    /// `--mutate-*`/`--checkpoint-*` validation contract.
    #[test]
    fn serve_flags_validate() {
        let el = tmp("sv.el");
        let st = tmp("sv.gts");
        let wl = tmp("sv.wl");
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "8", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        std::fs::write(&wl, "at=0 tenant=a job=bfs\n").unwrap();
        let cases: &[(&[&str], &str)] = &[
            (&["--slots", "three"], "--slots"),
            (&["--slots", "0"], "slots"),
            (&["--queue-cap", "x"], "--queue-cap"),
            (&["--queue-cap", "0"], "queue_capacity"),
            (&["--tenant-queue-cap", "x"], "--tenant-queue-cap"),
            (&["--tenant-queue-cap", "0"], "tenant_queue_capacity"),
            (&["--deadline", "soon"], "--deadline"),
            (&["--deadline", "0"], "deadline_ns"),
            (&["--host-threads", "zero"], "--host-threads"),
            (&["--strategy", "q"], "--strategy"),
            (&["--fault-seed", "lucky"], "--fault-seed"),
            (&["--retry-max", "x"], "--retry-max"),
            (&["--backoff-base", "x"], "--backoff-base"),
            (&["--backoff-base", "0"], "backoff_base_ns"),
            (&["--breaker-threshold", "x"], "--breaker-threshold"),
            (&["--breaker-cooldown", "x"], "--breaker-cooldown"),
            (
                &["--breaker-threshold", "2", "--breaker-cooldown", "0"],
                "breaker_cooldown_ns",
            ),
            (&["--shed-watermark", "hot"], "--shed-watermark"),
            (&["--shed-watermark", "150"], "shed_watermark_pct"),
            (&["--crash-at-epoch", "x"], "--crash-at-epoch"),
            (&["--crash-at-epoch", "1"], "--journal-dir"),
            (&["--resume-serve", "true"], "--journal-dir"),
            (&["--crash-mid-wal", "1"], "--wal-dir"),
            (&["--crash-pre-apply", "1"], "--wal-dir"),
            (
                &[
                    "--wal-dir",
                    "d",
                    "--crash-mid-wal",
                    "1",
                    "--crash-at-epoch",
                    "1",
                ],
                "mutually exclusive",
            ),
            (&["--mutate-at", "1"], "unknown flag"),
            (&["--checkpoint-dir", "d"], "unknown flag"),
        ];
        for (flags, needle) in cases {
            let mut argv = sv(&["serve", "--store", &st, "--workload", &wl]);
            argv.extend(sv(flags));
            let err = dispatch(&argv).unwrap_err();
            assert_eq!(err.exit_code(), EXIT_USAGE, "{flags:?}: {err}");
            assert!(
                err.to_string().contains(needle),
                "{flags:?}: error {err:?} does not name {needle:?}"
            );
        }
        // A malformed workload line is a usage error naming file + line.
        std::fs::write(&wl, "at=0 tenant=a job=frobnicate\n").unwrap();
        let err = dispatch(&sv(&["serve", "--store", &st, "--workload", &wl])).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_USAGE, "{err}");
        assert!(err.to_string().contains("line 1"), "{err}");
        // A missing workload file is an I/O error, not usage.
        let err = dispatch(&sv(&[
            "serve",
            "--store",
            &st,
            "--workload",
            "/nonexistent-gts-workload",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), EXIT_IO, "{err}");
        for p in [&el, &st, &wl] {
            std::fs::remove_file(p).ok();
        }
    }

    /// `gts serve` end to end: the scripted workload runs, writes the
    /// per-job and service dumps, and both are byte-identical at 1 vs 4
    /// host threads — the same diff the CI serve-smoke job performs.
    #[test]
    fn serve_is_host_thread_invariant_through_the_cli() {
        let el = tmp("serve.el");
        let st = tmp("serve.gts");
        let wl = tmp("serve.wl");
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "9", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        std::fs::write(
            &wl,
            "# serve smoke\n\
             at=0      tenant=a job=bfs\n\
             at=100000 tenant=b job=pagerank iters=3\n\
             at=200000 tenant=a job=cc\n\
             at=300000 tenant=m job=bfs mutate-at=1 inserts=16 deletes=2 seed=5\n\
             at=400000 tenant=b job=bfs source=1\n",
        )
        .unwrap();
        let dump = |threads: &str, jobs: &str, counters: &str| {
            dispatch(&sv(&[
                "serve",
                "--store",
                &st,
                "--workload",
                &wl,
                "--slots",
                "2",
                "--host-threads",
                threads,
                "--jobs-out",
                jobs,
                "--counters-out",
                counters,
            ]))
            .unwrap();
            (
                std::fs::read_to_string(jobs).unwrap(),
                std::fs::read_to_string(counters).unwrap(),
            )
        };
        let j1 = tmp("serve-jobs-1.txt");
        let c1 = tmp("serve-counters-1.txt");
        let j4 = tmp("serve-jobs-4.txt");
        let c4 = tmp("serve-counters-4.txt");
        let (jobs_one, counters_one) = dump("1", &j1, &c1);
        let (jobs_four, counters_four) = dump("4", &j4, &c4);
        assert_eq!(
            jobs_one, jobs_four,
            "per-job dumps must not depend on host threads"
        );
        assert_eq!(counters_one, counters_four);
        assert_eq!(jobs_one.matches("status=completed").count(), 5);
        assert!(jobs_one.contains("job.3.mut.batches 1"), "{jobs_one}");
        assert!(jobs_one.contains("job.0.tenant.a.cache.bytes_streamed"));
        assert!(
            counters_one.contains("serve.lat.all.count 5"),
            "{counters_one}"
        );
        assert!(counters_one.contains("serve.epochs 1"));
        let keys: Vec<&str> = counters_one
            .lines()
            .map(|l| l.split_once(' ').unwrap().0)
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "counters must be sorted");
        for p in [&el, &st, &wl, &j1, &c1, &j4, &c4] {
            std::fs::remove_file(p).ok();
        }
    }

    /// Every job status renders a stable machine-readable word in the
    /// `--jobs-out` dump — scripts grep these, so each variant must map
    /// to a distinct word.
    #[test]
    fn status_words_cover_every_variant() {
        let cases: &[(JobStatus, &str)] = &[
            (JobStatus::Completed, "completed"),
            (
                JobStatus::Dropped(ServeError::QueueFull {
                    waiting: 1,
                    capacity: 1,
                }),
                "dropped:queue_full",
            ),
            (
                JobStatus::Dropped(ServeError::Rejected {
                    tenant: "a".into(),
                    waiting: 1,
                    capacity: 1,
                }),
                "dropped:rejected",
            ),
            (
                JobStatus::Dropped(ServeError::Deadline {
                    waited_ns: 2,
                    deadline_ns: 1,
                }),
                "dropped:deadline",
            ),
            (
                JobStatus::Dropped(ServeError::BreakerOpen {
                    tenant: "a".into(),
                    failures: 3,
                    until_ns: 9,
                }),
                "dropped:breaker_open",
            ),
            (
                JobStatus::Dropped(ServeError::Shed {
                    class: "cc".into(),
                    pressure_pct: 50,
                    watermark_pct: 40,
                }),
                "dropped:shed",
            ),
            (
                JobStatus::Failed {
                    error: "engine: gpu fault".into(),
                },
                "failed",
            ),
            (
                JobStatus::Quarantined {
                    error: "engine: gpu fault".into(),
                    attempts: 3,
                },
                "quarantined",
            ),
        ];
        for (status, word) in cases {
            assert_eq!(status_word(status), *word);
        }
    }

    /// `gts serve` with a fault template and retries, end to end: some
    /// jobs fail or quarantine (typed statuses, never an abort), the
    /// retry/quarantine counters land in `--counters-out`, and the whole
    /// dump is byte-identical at 1 vs 4 host threads — the CI
    /// serve-chaos diff.
    #[test]
    fn serve_chaos_is_host_thread_invariant_through_the_cli() {
        let el = tmp("chaos.el");
        let st = tmp("chaos.gts");
        let wl = tmp("chaos.wl");
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "8", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&["build", "--graph", &el, "--out", &st])).unwrap();
        std::fs::write(
            &wl,
            "at=0      tenant=a job=bfs\n\
             at=10000  tenant=b job=pagerank iters=3\n\
             at=20000  tenant=a job=cc\n\
             at=30000  tenant=c job=sssp\n\
             at=40000  tenant=b job=degrees\n\
             at=50000  tenant=c job=kcore k=2\n",
        )
        .unwrap();
        let dump = |seed: &str, threads: &str, jobs: &str, counters: &str| {
            dispatch(&sv(&[
                "serve",
                "--store",
                &st,
                "--workload",
                &wl,
                "--slots",
                "2",
                "--fault-seed",
                seed,
                "--retry-max",
                "2",
                "--backoff-base",
                "1000",
                "--host-threads",
                threads,
                "--jobs-out",
                jobs,
                "--counters-out",
                counters,
            ]))
            .unwrap();
            (
                std::fs::read_to_string(jobs).unwrap(),
                std::fs::read_to_string(counters).unwrap(),
            )
        };
        let j1 = tmp("chaos-jobs-1.txt");
        let c1 = tmp("chaos-counters-1.txt");
        let j4 = tmp("chaos-jobs-4.txt");
        let c4 = tmp("chaos-counters-4.txt");
        // The fault template is seed-derived, so scan deterministically
        // for a seed whose derived domains actually quarantine a job —
        // the interesting path — then pin the invariance on that seed.
        let seed = (0u64..64)
            .map(|s| s.to_string())
            .find(|s| {
                let (jobs, _) = dump(s, "1", &j1, &c1);
                jobs.contains("status=quarantined")
            })
            .expect("no seed in 0..64 quarantines a job");
        let (jobs_one, counters_one) = dump(&seed, "1", &j1, &c1);
        let (jobs_four, counters_four) = dump(&seed, "4", &j4, &c4);
        assert_eq!(
            jobs_one, jobs_four,
            "chaos per-job dump must not depend on host threads"
        );
        assert_eq!(counters_one, counters_four);
        assert!(
            counters_one.contains("serve.quarantine.jobs"),
            "{counters_one}"
        );
        assert!(
            counters_one.contains("serve.retry.attempts"),
            "{counters_one}"
        );
        assert!(jobs_one.contains("attempts=3"), "{jobs_one}");
        for p in [&el, &st, &wl, &j1, &c1, &j4, &c4] {
            std::fs::remove_file(p).ok();
        }
    }

    /// Kill-and-resume through the CLI: `--crash-at-epoch` exits with
    /// the engine code mid-workload, `--resume-serve` replays from the
    /// journal, and both dumps match an uncrashed run byte-for-byte
    /// (modulo the wall-side `serve.journal.*`/`serve.resume.*` keys).
    /// Resuming from an empty journal directory is an I/O error.
    #[test]
    fn serve_crash_and_resume_through_the_cli() {
        let el = tmp("resume.el");
        let st = tmp("resume.gts");
        let wl = tmp("resume.wl");
        let dir = tmp("resume-journal");
        std::fs::create_dir_all(&dir).unwrap();
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "8", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&["build", "--graph", &el, "--out", &st])).unwrap();
        std::fs::write(
            &wl,
            "at=0      tenant=a job=bfs\n\
             at=10000  tenant=b job=pagerank iters=3\n\
             at=20000  tenant=m job=bfs mutate-at=1 inserts=16 deletes=2 seed=5\n\
             at=30000  tenant=a job=cc\n\
             at=40000  tenant=b job=sssp\n",
        )
        .unwrap();
        let base = sv(&["serve", "--store", &st, "--workload", &wl, "--slots", "2"]);
        let outputs = |tag: &str| (tmp(&format!("{tag}-jobs")), tmp(&format!("{tag}-counters")));
        let run = |extra: &[&str], jobs: &str, counters: &str| {
            let mut argv = base.clone();
            argv.extend(sv(extra));
            argv.extend(sv(&["--jobs-out", jobs, "--counters-out", counters]));
            dispatch(&argv)
        };
        // Resuming before any journal exists is an I/O failure (exit 3).
        let (rj, rc) = outputs("resume");
        let err = run(&["--journal-dir", &dir, "--resume-serve", "true"], &rj, &rc).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_IO, "{err}");
        // Uncrashed baseline, no journal.
        let (bj, bc) = outputs("base");
        run(&[], &bj, &bc).unwrap();
        // Crash right before the epoch bump: engine failure (exit 4).
        let (cj, cc) = outputs("crash");
        let err = run(&["--journal-dir", &dir, "--crash-at-epoch", "0"], &cj, &cc).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_ENGINE, "{err}");
        assert!(err.to_string().contains("injected crash"), "{err}");
        // Resume from the journal: byte-identical to the baseline.
        run(&["--journal-dir", &dir, "--resume-serve", "true"], &rj, &rc).unwrap();
        assert_eq!(
            std::fs::read_to_string(&bj).unwrap(),
            std::fs::read_to_string(&rj).unwrap(),
            "resumed per-job dump must match the uncrashed run"
        );
        let strip = |text: String| -> String {
            text.lines()
                .filter(|l| !l.starts_with("serve.journal.") && !l.starts_with("serve.resume."))
                .map(|l| format!("{l}\n"))
                .collect()
        };
        let resumed = std::fs::read_to_string(&rc).unwrap();
        assert!(resumed.contains("serve.resume.cached"), "{resumed}");
        assert_eq!(
            strip(std::fs::read_to_string(&bc).unwrap()),
            strip(resumed),
            "resumed counters must match the uncrashed run"
        );
        for p in [&el, &st, &wl, &bj, &bc, &cj, &cc, &rj, &rc] {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storage_flag_parsing() {
        assert!(matches!(
            parse_storage("mem"),
            Ok(StorageLocation::InMemory)
        ));
        assert!(matches!(
            parse_storage("ssd:2"),
            Ok(StorageLocation::Ssds(2))
        ));
        assert!(matches!(
            parse_storage("hdd:4"),
            Ok(StorageLocation::Hdds(4))
        ));
        assert!(parse_storage("floppy:1").is_err());
        assert!(parse_storage("ssd:x").is_err());
    }
}
