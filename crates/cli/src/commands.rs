//! Subcommand implementations.

use crate::args::Args;
use crate::edgelist;
use std::io::Write as _;

/// Print a line to stdout, exiting quietly (success) when the pipe is
/// closed — `gts run ... | head` must not die with a broken-pipe panic.
/// Checked via `io::ErrorKind`, which is locale-independent (unlike the
/// strerror text a panic message would carry). Any other stdout failure
/// (disk full, closed descriptor) exits with the I/O code, not a panic.
macro_rules! outln {
    ($($arg:tt)*) => {{
        let mut out = std::io::stdout().lock();
        if let Err(e) = writeln!(out, $($arg)*) {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                std::process::exit(0);
            }
            eprintln!("error: failed writing to stdout: {e}");
            std::process::exit(i32::from(EXIT_IO));
        }
    }};
}
use gts_core::engine::{CachePolicyKind, Gts, GtsConfig, StorageLocation};
use gts_core::programs::{
    Bc, Bfs, Cc, Degrees, GtsProgram, KCore, PageRank, RadiusEstimation, Rwr, Sssp,
};
use gts_core::{CheckpointConfig, CrashPoint, FaultConfig};
use gts_core::{MutationBatch, MutationSchedule};
use gts_core::{Strategy, Telemetry};
use gts_gpu::GpuConfig;
use gts_graph::generate::{erdos_renyi, web_like, Rmat};
use gts_graph::{Dataset, EdgeList};
use gts_storage::{
    build_graph_store, load_store, save_store, GraphStore, PageFormatConfig, PhysicalIdConfig,
};

/// Exit code for usage errors: unknown command, bad flag, bad value.
pub const EXIT_USAGE: u8 = 2;
/// Exit code for I/O failures: unreadable graph/store, unwritable output.
pub const EXIT_IO: u8 = 3;
/// Exit code for engine failures: O.O.M. after degradation, exhausted
/// fault retries, corrupt pages.
pub const EXIT_ENGINE: u8 = 4;

/// A failed CLI invocation, classified so `main` can map each kind to a
/// distinct nonzero exit code (scripts can tell "you typed it wrong"
/// from "the disk is bad" from "the run failed").
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is wrong (exit code [`EXIT_USAGE`]).
    Usage(String),
    /// Reading or writing a file failed (exit code [`EXIT_IO`]).
    Io(String),
    /// The engine accepted the config but the run failed (exit code
    /// [`EXIT_ENGINE`]).
    Engine(String),
}

impl CliError {
    /// The process exit code for this class of failure.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => EXIT_USAGE,
            CliError::Io(_) => EXIT_IO,
            CliError::Engine(_) => EXIT_ENGINE,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Engine(m) => f.write_str(m),
        }
    }
}

/// Bare strings come from argument parsing and validation — usage errors.
impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.to_string())
    }
}

const USAGE: &str = "\
gts — GTS (SIGMOD'16) graph processing, reproduced in Rust

USAGE:
  gts generate --kind <rmat|erdos|web|twitter|uk2007|yahooweb> --out <file>
               [--scale N] [--edge-factor N] [--vertices N] [--edges N] [--seed N]
  gts build    --graph <edge file> --out <store file>
               [--page-size BYTES] [--p BYTES] [--q BYTES]
  gts info     <store file>
  gts run      <bfs|pagerank|sssp|cc|bc|rwr|degrees|kcore|radius>
               --store <store file>
               [--source N] [--iterations N] [--k N] [--gpus N] [--streams N]
               [--strategy p|s] [--storage mem|ssd:N|hdd:N]
               [--device-memory BYTES] [--cache lru|fifo|random] [--json]
               [--trace-out trace.json] [--host-threads N] [--fault-seed N]
               [--measure-host-phases true]
               [--checkpoint-dir DIR] [--checkpoint-every N] [--resume true]
               [--run-budget NS] [--sweep-deadline NS] [--counters-out FILE]
               [--crash-at-sweep K | --crash-mid-write K]
               [--mutate-at K] [--mutate-inserts N] [--mutate-deletes N]
               [--mutate-seed N]
  gts help

Edge files are the binary GTSEDGES format produced by `gts generate`, or
plain text 'src dst' lines. Store files are the GTSPAGES slotted-page
format of the paper's Section 2. `--trace-out` writes a chrome://tracing
/ Perfetto JSON timeline of the run (the paper's Fig. 4 pipeline).
`--host-threads` sets the real threads used for kernel execution on this
machine (default: all cores); results, traces and simulated times are
identical for every value. `--fault-seed` enables deterministic fault
injection (transient read errors, torn/corrupt pages, GPU copy/launch
faults) with that seed; recovered faults only add simulated time.
`--measure-host-phases true` records wall-clock host time in kernel
phase A vs accounting phase B under `host.phase_*_ns` counter keys
(wall-side, outside the determinism contract — like `ckpt.*`).

Checkpoint/restart: `--checkpoint-dir` snapshots resumable state every
`--checkpoint-every` sweeps (default 1) with crash-atomic writes;
`--resume true` restarts from the latest valid snapshot there. The
watchdog budgets `--sweep-deadline` / `--run-budget` (simulated ns) abort
an overrunning run with exit code 4 after flushing a final checkpoint and
the trace. `--crash-at-sweep K` / `--crash-mid-write K` inject a
deterministic kill at (or during the snapshot write of) sweep K's
boundary, for kill-and-resume chaos testing. `--counters-out` writes the
final counter registry as sorted 'key value' lines, also on failure.

Live topology: `--mutate-at K` applies a batched edge mutation at the
boundary of sweep K while the query runs (Sec. 2's slotted pages are
rewritten in place, with delta pages on slot overflow, and the store
epoch bumps so checkpoints from before the batch refuse a stale resume).
The batch is generated deterministically from `--mutate-seed`:
`--mutate-inserts` random edge insertions (default 64) plus
`--mutate-deletes` deletions of existing edges (default 0). Results are
identical at every `--host-threads` value; progress is visible in the
`mut.*` counters.

Exit codes: 0 success, 2 usage error, 3 I/O failure, 4 engine failure.";

/// Dispatch the command line.
pub fn dispatch(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    match args.positional(0) {
        Some("generate") => generate(&args),
        Some("build") => build(&args),
        Some("info") => info(&args),
        Some("run") => run(&args),
        Some("help") | None => {
            outln!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    }
}

fn generate(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "kind",
        "out",
        "scale",
        "edge-factor",
        "vertices",
        "edges",
        "seed",
    ])?;
    let kind = args.required("kind")?;
    let out = args.required("out")?;
    let seed = args.get_or("seed", 0x6715_2016u64)?;
    let graph: EdgeList = match kind {
        "rmat" => {
            let scale = args.get_or("scale", 16u32)?;
            let ef = args.get_or("edge-factor", 16u32)?;
            Rmat::new(scale)
                .with_edge_factor(ef)
                .with_seed(seed)
                .generate()
        }
        "erdos" => {
            let n = args.get_or("vertices", 1u32 << 16)?;
            let m = args.get_or("edges", 1usize << 20)?;
            erdos_renyi(n, m, seed)
        }
        "web" => {
            let n = args.get_or("vertices", 1u32 << 16)?;
            let communities = (n / 512).max(2);
            web_like(communities, n / communities, 4, seed)
        }
        "twitter" => Dataset::TwitterLike.generate(),
        "uk2007" => Dataset::Uk2007Like.generate(),
        "yahooweb" => Dataset::YahooWebLike.generate(),
        other => return Err(CliError::Usage(format!("unknown graph kind {other:?}"))),
    };
    edgelist::write(&graph, out).map_err(|e| CliError::Io(e.to_string()))?;
    outln!(
        "wrote {} vertices, {} edges to {out}",
        graph.num_vertices,
        graph.num_edges()
    );
    Ok(())
}

fn build(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["graph", "out", "page-size", "p", "q"])?;
    let graph = edgelist::read(args.required("graph")?).map_err(|e| CliError::Io(e.to_string()))?;
    let out = args.required("out")?;
    let page_size = args.get_or("page-size", 64 * 1024usize)?;
    let p = args.get_or("p", 2u8)?;
    let q = args.get_or("q", 2u8)?;
    let cfg = PageFormatConfig::new(PhysicalIdConfig::new(p, q), page_size);
    let store = build_graph_store(&graph, cfg).map_err(|e| e.to_string())?;
    save_store(&store, out).map_err(|e| CliError::Io(e.to_string()))?;
    outln!(
        "built {}: {} SP + {} LP pages of {} B ({:.1} MiB topology)",
        out,
        store.small_pids().len(),
        store.large_pids().len(),
        page_size,
        store.topology_bytes() as f64 / (1 << 20) as f64
    );
    Ok(())
}

fn info(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[])?;
    let path = args.positional(1).ok_or("usage: gts info <store file>")?;
    let store = load_store(path).map_err(|e| CliError::Io(e.to_string()))?;
    let cfg = store.cfg();
    outln!("store:     {path}");
    outln!(
        "format:    {} pages of {} B, physical ids {}",
        store.num_pages(),
        cfg.page_size,
        cfg.id
    );
    outln!(
        "graph:     {} vertices, {} edges",
        store.num_vertices(),
        store.num_edges()
    );
    outln!(
        "pages:     {} small, {} large",
        store.small_pids().len(),
        store.large_pids().len()
    );
    outln!("topology:  {} bytes", store.topology_bytes());
    for (name, wa) in [
        ("BFS", gts_core::attrs::AlgorithmKind::Bfs),
        ("PageRank", gts_core::attrs::AlgorithmKind::PageRank),
        ("SSSP", gts_core::attrs::AlgorithmKind::Sssp),
        ("CC", gts_core::attrs::AlgorithmKind::ConnectedComponents),
    ] {
        let bytes = wa.wa_bytes(store.num_vertices());
        outln!(
            "WA {name:<9} {bytes} bytes ({:.1} % of topology)",
            bytes as f64 / store.topology_bytes() as f64 * 100.0
        );
    }
    Ok(())
}

fn parse_storage(s: &str) -> Result<StorageLocation, String> {
    if s == "mem" {
        return Ok(StorageLocation::InMemory);
    }
    if let Some(n) = s.strip_prefix("ssd:") {
        return Ok(StorageLocation::Ssds(
            n.parse().map_err(|_| format!("bad ssd count {n:?}"))?,
        ));
    }
    if let Some(n) = s.strip_prefix("hdd:") {
        return Ok(StorageLocation::Hdds(
            n.parse().map_err(|_| format!("bad hdd count {n:?}"))?,
        ));
    }
    Err(format!("bad --storage {s:?} (mem | ssd:N | hdd:N)"))
}

/// The `--checkpoint-dir` / `--checkpoint-every` / `--resume` trio.
/// `--checkpoint-every` and `--resume` are meaningless without a
/// directory, so they are usage errors on their own (typo protection).
fn parse_checkpoint(args: &Args) -> Result<Option<CheckpointConfig>, CliError> {
    let resume = match args.optional("resume") {
        None | Some("false") => false,
        Some("true") => true,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "bad --resume {other:?} (true | false)"
            )))
        }
    };
    let Some(dir) = args.optional("checkpoint-dir") else {
        if args.optional("checkpoint-every").is_some() || resume {
            return Err(CliError::Usage(
                "--checkpoint-every/--resume need --checkpoint-dir".into(),
            ));
        }
        return Ok(None);
    };
    let every: u32 = match args.optional("checkpoint-every") {
        None => 1,
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --checkpoint-every {v:?} (sweeps)"))?,
    };
    let ck = CheckpointConfig::new(dir, every);
    Ok(Some(if resume { ck.resuming() } else { ck }))
}

/// `--crash-at-sweep K` / `--crash-mid-write K` — at most one.
fn parse_crash_point(args: &Args) -> Result<Option<CrashPoint>, CliError> {
    let parse = |name: &str, v: &str| -> Result<u32, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(format!("bad --{name} {v:?} (sweep number)")))
    };
    match (
        args.optional("crash-at-sweep"),
        args.optional("crash-mid-write"),
    ) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--crash-at-sweep and --crash-mid-write are mutually exclusive".into(),
        )),
        (Some(k), None) => Ok(Some(CrashPoint::AtSweep(parse("crash-at-sweep", k)?))),
        (None, Some(k)) => Ok(Some(CrashPoint::MidSnapshotWrite(parse(
            "crash-mid-write",
            k,
        )?))),
        (None, None) => Ok(None),
    }
}

/// The `--mutate-at` / `--mutate-inserts` / `--mutate-deletes` /
/// `--mutate-seed` quartet: one deterministic update-while-query batch
/// applied at the given sweep boundary via [`Gts::run_live`]. The batch
/// flags are meaningless without `--mutate-at`.
fn parse_mutation(args: &Args, store: &GraphStore) -> Result<Option<MutationSchedule>, CliError> {
    let Some(at) = args.optional("mutate-at") else {
        for flag in ["mutate-inserts", "mutate-deletes", "mutate-seed"] {
            if args.optional(flag).is_some() {
                return Err(CliError::Usage(format!("--{flag} needs --mutate-at")));
            }
        }
        return Ok(None);
    };
    let at: u32 = at
        .parse()
        .map_err(|_| CliError::Usage(format!("bad --mutate-at {at:?} (sweep number)")))?;
    let inserts = args.get_or("mutate-inserts", 64u64)?;
    let deletes = args.get_or("mutate-deletes", 0u64)?;
    let seed = args.get_or("mutate-seed", 0x6715_2016u64)?;
    let batch = mutation_batch(store, inserts, deletes, seed);
    Ok(Some(MutationSchedule::new().at(at, batch)))
}

/// A deterministic mutation batch: xorshift64-drawn endpoint pairs for
/// the insertions, evenly-strided existing edges for the deletions —
/// reproducible from the seed alone, independent of host threading.
fn mutation_batch(store: &GraphStore, inserts: u64, deletes: u64, seed: u64) -> MutationBatch {
    let n = store.num_vertices();
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut batch = MutationBatch::new();
    for _ in 0..inserts {
        let s = next() % n;
        let d = next() % n;
        batch.insert(s, d);
    }
    if deletes > 0 {
        // Deletions must name edges that exist: stride over the decoded
        // edge list (duplicates are fine — each occurrence deletes once).
        let edges = store.decode_edges();
        let take = deletes.min(edges.len() as u64);
        let stride = (edges.len() as u64 / take.max(1)).max(1);
        for i in 0..take {
            let (s, d) = edges[(i * stride) as usize % edges.len()];
            batch.delete(s, d);
        }
    }
    batch
}

fn run(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "store",
        "source",
        "iterations",
        "k",
        "gpus",
        "streams",
        "strategy",
        "storage",
        "device-memory",
        "cache",
        "json",
        "trace-out",
        "host-threads",
        "measure-host-phases",
        "fault-seed",
        "checkpoint-dir",
        "checkpoint-every",
        "resume",
        "run-budget",
        "sweep-deadline",
        "crash-at-sweep",
        "crash-mid-write",
        "counters-out",
        "mutate-at",
        "mutate-inserts",
        "mutate-deletes",
        "mutate-seed",
    ])?;
    let alg = args
        .positional(1)
        .ok_or("usage: gts run <algorithm> --store <file>")?;
    let mut store: GraphStore =
        load_store(args.required("store")?).map_err(|e| CliError::Io(e.to_string()))?;
    let mut schedule = parse_mutation(args, &store)?;
    let source = args.get_or("source", 0u64)?;
    let iterations = args.get_or("iterations", 10u32)?;
    if source >= store.num_vertices() {
        return Err(CliError::Usage(format!(
            "--source {source} out of range ({} vertices)",
            store.num_vertices()
        )));
    }

    let mut cfg_builder = GtsConfig::builder()
        .num_gpus(args.get_or("gpus", 1usize)?)
        .num_streams(args.get_or("streams", 16usize)?)
        .strategy(match args.optional("strategy").unwrap_or("p") {
            "p" => Strategy::Performance,
            "s" => Strategy::Scalability,
            other => return Err(CliError::Usage(format!("bad --strategy {other:?} (p | s)"))),
        })
        .storage(parse_storage(args.optional("storage").unwrap_or("mem"))?)
        .gpu(GpuConfig::titan_x().with_device_memory(args.get_or("device-memory", 12u64 << 30)?))
        .cache_policy(match args.optional("cache").unwrap_or("lru") {
            "lru" => CachePolicyKind::Lru,
            "fifo" => CachePolicyKind::Fifo,
            "random" => CachePolicyKind::Random,
            other => return Err(CliError::Usage(format!("bad --cache {other:?}"))),
        });
    if let Some(ht) = args.optional("host-threads") {
        cfg_builder = cfg_builder.host_threads(
            ht.parse()
                .map_err(|_| format!("bad --host-threads {ht:?}"))?,
        );
    }
    if args
        .optional("measure-host-phases")
        .map(|v| v == "true")
        .unwrap_or(false)
    {
        cfg_builder = cfg_builder.measure_host_phases(true);
    }
    let mut faults = match args.optional("fault-seed") {
        Some(seed) => Some(FaultConfig::with_seed(
            seed.parse()
                .map_err(|_| format!("bad --fault-seed {seed:?}"))?,
        )),
        None => None,
    };
    if let Some(crash) = parse_crash_point(args)? {
        // A crash point needs a fault plan to live in; without an
        // explicit seed, use a quiet plan so the kill is the only fault.
        faults.get_or_insert_with(|| FaultConfig::quiet(0)).crash = Some(crash);
    }
    cfg_builder = cfg_builder.faults(faults);
    if let Some(ck) = parse_checkpoint(args)? {
        cfg_builder = cfg_builder.checkpoint(Some(ck));
    }
    if let Some(ns) = args.optional("sweep-deadline") {
        let ns: u64 = ns
            .parse()
            .map_err(|_| format!("bad --sweep-deadline {ns:?} (simulated ns)"))?;
        cfg_builder = cfg_builder.sweep_deadline_ns(Some(ns));
    }
    if let Some(ns) = args.optional("run-budget") {
        let ns: u64 = ns
            .parse()
            .map_err(|_| format!("bad --run-budget {ns:?} (simulated ns)"))?;
        cfg_builder = cfg_builder.run_budget_ns(Some(ns));
    }
    let cfg = cfg_builder.build().map_err(|e| e.to_string())?;

    let n = store.num_vertices();
    let k = args.get_or("k", 2u32)?;
    let trace_out = args.optional("trace-out");
    let mut builder = Gts::builder().config(cfg);
    if trace_out.is_some() {
        // Spans cost memory proportional to pages streamed; only record
        // them when the user asked for a trace file.
        builder = builder.telemetry(Telemetry::with_spans());
    }
    let engine = builder.build().map_err(|e| e.to_string())?;
    let mut exec = |prog: &mut dyn GtsProgram| {
        let r = match schedule.take() {
            Some(s) => engine.run_live(&mut store, prog, s),
            None => engine.run(&store, prog),
        };
        r.map_err(|e| CliError::Engine(e.to_string()))
    };
    // Run the algorithm but hold the result: when the run fails mid-sweep
    // the engine still flushes its open spans and counters, and the
    // partial trace below is exactly the evidence needed to debug it.
    let outcome = (|| -> Result<_, CliError> {
        Ok(match alg {
            "bfs" => {
                let mut p = Bfs::new(n, source);
                let r = exec(&mut p)?;
                let reached = p.levels().iter().filter(|&&l| l != u16::MAX).count();
                (r, format!("{reached} vertices reached from {source}"))
            }
            "pagerank" => {
                let mut p = PageRank::new(n, iterations);
                let r = exec(&mut p)?;
                let top = top_vertex(p.ranks())
                    .map(|(v, s)| format!("top vertex {v} (score {s:.6})"))
                    .unwrap_or_default();
                (r, top)
            }
            "sssp" => {
                let mut p = Sssp::new(n, source);
                let r = exec(&mut p)?;
                let reached = p.distances().iter().filter(|&&d| d != u32::MAX).count();
                (r, format!("{reached} vertices reachable from {source}"))
            }
            "cc" => {
                let mut p = Cc::new(n);
                let r = exec(&mut p)?;
                let mut labels: Vec<u64> = p.labels().to_vec();
                labels.sort_unstable();
                labels.dedup();
                (r, format!("{} weakly connected components", labels.len()))
            }
            "bc" => {
                let mut p = Bc::new(n, source);
                let r = exec(&mut p)?;
                let top = top_vertex(p.centrality())
                    .map(|(v, s)| format!("most central vertex {v} (bc {s:.1})"))
                    .unwrap_or_default();
                (r, top)
            }
            "rwr" => {
                let mut p = Rwr::new(n, source, iterations);
                let r = exec(&mut p)?;
                let mut scored: Vec<(usize, f32)> =
                    p.scores().iter().copied().enumerate().collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                let near: Vec<String> = scored
                    .iter()
                    .take(4)
                    .map(|(v, s)| format!("{v}:{s:.4}"))
                    .collect();
                (r, format!("closest to {source}: {}", near.join(" ")))
            }
            "degrees" => {
                let mut p = Degrees::new(n);
                let r = exec(&mut p)?;
                let max = p.degrees().iter().max().copied().unwrap_or(0);
                (r, format!("max out-degree {max}"))
            }
            "kcore" => {
                let mut p = KCore::new(n, k);
                let r = exec(&mut p)?;
                (r, format!("{}-core has {} vertices", k, p.core_size()))
            }
            "radius" => {
                let mut p = RadiusEstimation::new(n);
                let r = exec(&mut p)?;
                (
                    r,
                    format!(
                        "estimated radius {:?}, diameter {}{}",
                        p.radius(),
                        p.diameter(),
                        if p.is_exact() { " (exact)" } else { "" }
                    ),
                )
            }
            other => return Err(CliError::Usage(format!("unknown algorithm {other:?}"))),
        })
    })();

    if let Some(path) = trace_out {
        std::fs::write(path, engine.telemetry().to_chrome_trace())
            .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
        outln!("trace:          {path} (load in ui.perfetto.dev or chrome://tracing)");
    }
    if let Some(path) = args.optional("counters-out") {
        // Written before the outcome propagates: a crashed/deadlined run's
        // counters are exactly what the kill-resume CI job diffs.
        let mut lines = String::new();
        for (k, v) in engine.telemetry().counters() {
            lines.push_str(&format!("{k} {v}\n"));
        }
        std::fs::write(path, lines).map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
    }
    let (report, summary) = outcome?;
    if args.optional("json").map(|v| v == "true").unwrap_or(false) {
        outln!("{}", report.to_json());
    } else {
        outln!("algorithm:      {}", report.algorithm);
        outln!("simulated time: {}", report.elapsed);
        outln!("sweeps:         {}", report.sweeps);
        outln!("pages streamed: {}", report.pages_streamed);
        outln!(
            "cache hits:     {} ({:.1} %)",
            report.cache_hits,
            report.cache_hit_rate * 100.0
        );
        outln!(
            "edges visited:  {} ({:.0} MTEPS)",
            report.edges_traversed,
            report.mteps()
        );
        outln!("result:         {summary}");
    }
    Ok(())
}

/// Highest-scoring vertex (NaN-safe via total order); `None` on empty.
fn top_vertex(scores: &[f32]) -> Option<(usize, f32)> {
    scores
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("gts-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_build_info_run_pipeline() {
        let el = tmp("g.el");
        let st = tmp("g.gts");
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "9", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        dispatch(&sv(&["info", &st])).unwrap();
        for alg in [
            "bfs", "pagerank", "sssp", "cc", "bc", "rwr", "degrees", "kcore", "radius",
        ] {
            dispatch(&sv(&["run", alg, "--store", &st, "--iterations", "2"]))
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
        // Out-of-core configuration also works end to end.
        dispatch(&sv(&[
            "run",
            "pagerank",
            "--store",
            &st,
            "--iterations",
            "2",
            "--gpus",
            "2",
            "--strategy",
            "s",
            "--storage",
            "ssd:2",
        ]))
        .unwrap();
        // Explicit host-thread counts run fine (determinism is asserted by
        // the engine and integration tests; this checks flag plumbing).
        dispatch(&sv(&[
            "run",
            "pagerank",
            "--store",
            &st,
            "--iterations",
            "2",
            "--host-threads",
            "2",
        ]))
        .unwrap();
        assert!(dispatch(&sv(&[
            "run",
            "bfs",
            "--store",
            &st,
            "--host-threads",
            "zero"
        ]))
        .is_err());
        // --trace-out writes a chrome-trace JSON file.
        let tr = tmp("trace.json");
        dispatch(&sv(&[
            "run",
            "bfs",
            "--store",
            &st,
            "--streams",
            "4",
            "--trace-out",
            &tr,
        ]))
        .unwrap();
        let trace = std::fs::read_to_string(&tr).unwrap();
        assert!(trace.contains("traceEvents"));
        assert!(trace.contains("\"ph\":\"X\""));
        // Fault injection is plumbed through: an injected run completes
        // (recovered faults only add simulated time).
        dispatch(&sv(&[
            "run",
            "pagerank",
            "--store",
            &st,
            "--iterations",
            "2",
            "--storage",
            "ssd:2",
            "--fault-seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            dispatch(&sv(&["run", "bfs", "--store", &st, "--fault-seed", "x"]))
                .unwrap_err()
                .exit_code(),
            EXIT_USAGE
        );
        // A failed run still writes the partial trace (engine failures get
        // their own exit code, distinct from usage and I/O errors).
        let failed_tr = tmp("failed-trace.json");
        let err = dispatch(&sv(&[
            "run",
            "bfs",
            "--store",
            &st,
            "--device-memory",
            "1024",
            "--trace-out",
            &failed_tr,
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), EXIT_ENGINE, "{err}");
        let partial = std::fs::read_to_string(&failed_tr).unwrap();
        assert!(partial.contains("traceEvents"));
        std::fs::remove_file(&failed_tr).ok();
        std::fs::remove_file(&tr).ok();
        std::fs::remove_file(&el).ok();
        std::fs::remove_file(&st).ok();
    }

    #[test]
    fn helpful_errors_with_classified_exit_codes() {
        for usage in [
            sv(&["frobnicate"]),
            sv(&["run", "bfs"]),
            sv(&["generate", "--kind", "nope", "--out", "/tmp/x"]),
        ] {
            let err = dispatch(&usage).unwrap_err();
            assert_eq!(err.exit_code(), EXIT_USAGE, "{err}");
        }
        let err = dispatch(&sv(&["run", "bfs", "--store", "/nonexistent-gts-file"])).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_IO);
        let msg = err.to_string();
        assert!(msg.contains("i/o") || msg.contains("No such file"), "{msg}");
    }

    /// Every malformed checkpoint/watchdog/chaos flag is a typed usage
    /// error (exit 2) naming the flag — one case per flag.
    #[test]
    fn checkpoint_and_watchdog_flags_validate() {
        let cases: &[(&[&str], &str)] = &[
            (&["--checkpoint-every", "x"], "--checkpoint-every"),
            (&["--checkpoint-every", "2"], "--checkpoint-dir"),
            (&["--resume", "true"], "--checkpoint-dir"),
            (&["--checkpoint-dir", "d", "--resume", "yes"], "--resume"),
            (
                &["--checkpoint-dir", "d", "--checkpoint-every", "0"],
                "checkpoint.every",
            ),
            (&["--run-budget", "soon"], "--run-budget"),
            (&["--run-budget", "0"], "run_budget_ns"),
            (&["--sweep-deadline", "-1"], "--sweep-deadline"),
            (&["--sweep-deadline", "0"], "sweep_deadline_ns"),
            (&["--crash-at-sweep", "x"], "--crash-at-sweep"),
            (&["--crash-mid-write", "x"], "--crash-mid-write"),
            (
                &["--crash-at-sweep", "2", "--crash-mid-write", "4"],
                "mutually exclusive",
            ),
            (&["--mutate-at", "x"], "--mutate-at"),
            (&["--mutate-inserts", "5"], "--mutate-at"),
            (&["--mutate-deletes", "5"], "--mutate-at"),
            (&["--mutate-seed", "5"], "--mutate-at"),
        ];
        // A real store so validation (not a missing file) is what fails.
        let el = tmp("v.el");
        let st = tmp("v.gts");
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "8", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        for (flags, needle) in cases {
            let mut argv = sv(&["run", "bfs", "--store", &st]);
            argv.extend(sv(flags));
            let err = dispatch(&argv).unwrap_err();
            assert_eq!(err.exit_code(), EXIT_USAGE, "{flags:?}: {err}");
            assert!(
                err.to_string().contains(needle),
                "{flags:?}: error {err:?} does not name {needle:?}"
            );
        }
        std::fs::remove_file(&el).ok();
        std::fs::remove_file(&st).ok();
    }

    /// The flags work end to end: checkpoint, injected kill (engine exit
    /// code), resume to completion, counters dumped as sorted lines.
    #[test]
    fn kill_and_resume_through_the_cli() {
        let el = tmp("kr.el");
        let st = tmp("kr.gts");
        let ck = tmp("kr-ckpts");
        let counters = tmp("kr-counters.txt");
        std::fs::remove_dir_all(&ck).ok();
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "9", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        let run = |extra: &[&str]| {
            let mut argv = sv(&[
                "run",
                "pagerank",
                "--store",
                &st,
                "--iterations",
                "6",
                "--storage",
                "ssd:2",
                "--checkpoint-dir",
                &ck,
                "--checkpoint-every",
                "2",
            ]);
            argv.extend(sv(extra));
            dispatch(&argv)
        };
        let err = run(&["--crash-at-sweep", "3"]).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_ENGINE, "{err}");
        assert!(err.to_string().contains("injected crash"), "{err}");
        run(&["--resume", "true", "--counters-out", &counters]).unwrap();
        let dump = std::fs::read_to_string(&counters).unwrap();
        let keys: Vec<&str> = dump.lines().map(|l| l.split_once(' ').unwrap().0).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "counters must be sorted");
        assert!(dump.contains("run.sweeps "), "{dump}");
        // A deadline abort is the engine's typed failure, trace intact.
        let tr = tmp("kr-deadline-trace.json");
        let err = run(&["--run-budget", "1", "--trace-out", &tr]).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_ENGINE, "{err}");
        assert!(err.to_string().contains("run_budget_ns"), "{err}");
        assert!(std::fs::read_to_string(&tr)
            .unwrap()
            .contains("traceEvents"));
        std::fs::remove_file(&tr).ok();
        std::fs::remove_file(&counters).ok();
        std::fs::remove_file(&el).ok();
        std::fs::remove_file(&st).ok();
        std::fs::remove_dir_all(&ck).ok();
    }

    /// A mutate-while-sweep run is byte-identical at any host-thread
    /// count — the CI determinism job diffs exactly these counter dumps.
    #[test]
    fn mutate_while_sweep_is_thread_count_invariant() {
        let el = tmp("mut.el");
        let st = tmp("mut.gts");
        dispatch(&sv(&[
            "generate", "--kind", "rmat", "--scale", "9", "--out", &el,
        ]))
        .unwrap();
        dispatch(&sv(&[
            "build",
            "--graph",
            &el,
            "--out",
            &st,
            "--page-size",
            "4096",
        ]))
        .unwrap();
        let dump = |threads: &str, out: &str| {
            dispatch(&sv(&[
                "run",
                "bfs",
                "--store",
                &st,
                "--mutate-at",
                "1",
                "--mutate-inserts",
                "48",
                "--mutate-deletes",
                "8",
                "--host-threads",
                threads,
                "--counters-out",
                out,
            ]))
            .unwrap();
            std::fs::read_to_string(out).unwrap()
        };
        let c1 = tmp("mut-counters-1.txt");
        let c4 = tmp("mut-counters-4.txt");
        let one = dump("1", &c1);
        let four = dump("4", &c4);
        assert_eq!(one, four, "mutated run must not depend on host threads");
        assert!(one.contains("mut.batches 1"), "{one}");
        assert!(one.contains("mut.inserted 48"), "{one}");
        assert!(one.contains("mut.deleted 8"), "{one}");
        assert!(one.contains("mut.epoch 1"), "{one}");
        for p in [&el, &st, &c1, &c4] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn storage_flag_parsing() {
        assert!(matches!(
            parse_storage("mem"),
            Ok(StorageLocation::InMemory)
        ));
        assert!(matches!(
            parse_storage("ssd:2"),
            Ok(StorageLocation::Ssds(2))
        ));
        assert!(matches!(
            parse_storage("hdd:4"),
            Ok(StorageLocation::Hdds(4))
        ));
        assert!(parse_storage("floppy:1").is_err());
        assert!(parse_storage("ssd:x").is_err());
    }
}
