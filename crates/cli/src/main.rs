//! `gts` — the command-line interface to the GTS reproduction.
//!
//! ```text
//! gts generate --kind rmat --scale 16 --out graph.el
//! gts build    --graph graph.el --out graph.gts --page-size 65536
//! gts info     graph.gts
//! gts run bfs  --store graph.gts --source 0 --gpus 2 --streams 16
//! ```
//!
//! See `gts help` (or any subcommand with wrong arguments) for the full
//! usage text.
//!
//! Exit codes are classified: 0 success, 2 usage error, 3 I/O failure,
//! 4 engine failure — so scripts can tell a typo from a bad disk from a
//! failed run.

mod args;
mod commands;
mod edgelist;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
