//! Dataset construction helpers shared by the bench targets.

use crate::scale;
use gts_core::engine::{EngineError, Gts, GtsConfig};
use gts_core::programs::GtsProgram;
use gts_core::report::RunReport;
use gts_core::Telemetry;
use gts_graph::{Csr, Dataset, EdgeList};
use gts_storage::builder::{build_from_csr, GraphStore};

/// A fully prepared dataset: edge list, CSR, and slotted-page store.
pub struct Prepared {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// The raw edges.
    pub edges: EdgeList,
    /// CSR for the CPU/distributed baselines.
    pub csr: Csr,
    /// Slotted-page store for GTS.
    pub store: GraphStore,
}

impl Prepared {
    /// Generate and build everything for `dataset` under the scale
    /// policy's page format.
    pub fn build(dataset: Dataset) -> Prepared {
        let edges = dataset.generate();
        let csr = Csr::from_edge_list(&edges);
        let store = build_from_csr(&csr, scale::page_format_for(dataset))
            .expect("dataset fits its page format");
        Prepared {
            dataset,
            edges,
            csr,
            store,
        }
    }

    /// Run a GTS program under `cfg`, returning the report.
    pub fn run_gts(
        &self,
        cfg: GtsConfig,
        prog: &mut dyn GtsProgram,
    ) -> Result<RunReport, EngineError> {
        Gts::new(cfg).run(&self.store, prog)
    }

    /// Run with span recording on, returning the report and the telemetry
    /// handle (for timeline rendering and chrome-trace export).
    pub fn run_gts_traced(
        &self,
        cfg: GtsConfig,
        prog: &mut dyn GtsProgram,
    ) -> Result<(RunReport, Telemetry), EngineError> {
        let engine = Gts::builder()
            .config(cfg)
            .telemetry(Telemetry::with_spans())
            .build()
            .expect("bench config valid");
        let report = engine.run(&self.store, prog)?;
        Ok((report, engine.telemetry().clone()))
    }
}

/// BFS source used across all experiments (the paper traverses from a
/// fixed start vertex; 0 is always present and non-isolated in RMAT).
pub const BFS_SOURCE: u64 = 0;

/// PageRank iterations used across all experiments (the paper measures
/// ten iterations).
pub const PR_ITERATIONS: u32 = 10;
