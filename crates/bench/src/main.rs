//! `gts-bench` — the wall-clock benchmark binary.
//!
//! Runs the reproducible benchmark suites (`page`, `sweep`, `e2e`,
//! `mutation`, `serve`, `wal`) under
//! the warmup/repeat/median protocol of [`gts_bench::bench`], prints
//! each suite as an aligned table, and optionally writes / validates /
//! regression-checks the machine-readable `BENCH_*.json` artifacts.
//!
//! ```text
//! gts-bench [--suite page|sweep|e2e|mutation|serve|wal|all] [--json-out PATH]
//!           [--repeats N] [--warmup N] [--quick]
//!           [--check-against PATH] [--tolerance F]
//!           [--validate FILE ...]
//! ```
//!
//! `--json-out` takes a file path for a single suite, or a directory
//! (receiving `BENCH_<suite>.json`) for `--suite all`. Ditto
//! `--check-against` for the baseline side. `--quick` shrinks the
//! protocol and scales for CI smoke runs. `--validate` parses the given
//! artifacts against the schema and exits, running nothing.
//!
//! Exit codes: 0 success, 1 validation/regression failure, 2 usage.

use gts_bench::bench::{BenchEntry, BenchReport, BenchSpec};
use gts_bench::scale;
use gts_bench::table::report_table;
use gts_core::engine::{Gts, GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, PageRank};
use gts_core::{Engine, MutationSchedule};
use gts_graph::Dataset;
use gts_serve::scheduler::{serve, ServeConfig};
use gts_serve::workload::{seeded_batch, synthetic};
use gts_storage::{build_graph_store, CachePolicy, FifoCache, LruCache, RandomCache};
use gts_telemetry::keys;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Everything the option parser extracts.
struct Opts {
    suite: String,
    json_out: Option<PathBuf>,
    check_against: Option<PathBuf>,
    tolerance: f64,
    warmup: u32,
    repeats: u32,
    quick: bool,
    validate: Vec<PathBuf>,
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&argv) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gts-bench: {e}");
            return ExitCode::from(2);
        }
    };

    if !opts.validate.is_empty() {
        return validate(&opts.validate);
    }

    let suites: Vec<&str> = match opts.suite.as_str() {
        "all" => vec!["page", "sweep", "e2e", "mutation", "serve", "wal"],
        s @ ("page" | "sweep" | "e2e" | "mutation" | "serve" | "wal") => vec![s],
        other => {
            eprintln!(
                "gts-bench: unknown suite {other:?} (page | sweep | e2e | mutation | serve | wal | all)"
            );
            return ExitCode::from(2);
        }
    };

    let mut failures = Vec::new();
    for suite in &suites {
        let report = match *suite {
            "page" => page_suite(&opts),
            "sweep" => sweep_suite(&opts),
            "mutation" => mutation_suite(&opts),
            "serve" => serve_suite(&opts),
            "wal" => wal_suite(&opts),
            _ => e2e_suite(&opts),
        };
        report_table(&report).finish();
        if let Some(out) = &opts.json_out {
            let path = artifact_path(out, &report.suite, suites.len() > 1);
            if let Err(e) = report.write_json(&path) {
                eprintln!("gts-bench: writing {}: {e}", path.display());
                return ExitCode::from(1);
            }
            println!("  -> {}", path.display());
        }
        if let Some(base) = &opts.check_against {
            let path = artifact_path(base, &report.suite, suites.len() > 1);
            match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|t| BenchReport::from_json(&t))
            {
                Ok(baseline) => failures.extend(report.compare(&baseline, opts.tolerance)),
                Err(e) => failures.push(format!("baseline {}: {e}", path.display())),
            }
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("REGRESSION {f}");
        }
        ExitCode::from(1)
    }
}

fn parse(argv: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        suite: "all".to_string(),
        json_out: None,
        check_against: None,
        tolerance: 0.20,
        warmup: 1,
        repeats: 5,
        quick: false,
        validate: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--suite" => opts.suite = val("--suite")?,
            "--json-out" => opts.json_out = Some(PathBuf::from(val("--json-out")?)),
            "--check-against" => {
                opts.check_against = Some(PathBuf::from(val("--check-against")?));
            }
            "--tolerance" => {
                let v = val("--tolerance")?;
                opts.tolerance = v.parse().map_err(|_| format!("bad --tolerance {v:?}"))?;
            }
            "--warmup" => {
                let v = val("--warmup")?;
                opts.warmup = v.parse().map_err(|_| format!("bad --warmup {v:?}"))?;
            }
            "--repeats" => {
                let v = val("--repeats")?;
                opts.repeats = v.parse().map_err(|_| format!("bad --repeats {v:?}"))?;
            }
            "--quick" => opts.quick = true,
            "--validate" => {
                opts.validate.push(PathBuf::from(val("--validate")?));
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if opts.quick {
        opts.warmup = 0;
        opts.repeats = opts.repeats.min(2);
    }
    Ok(opts)
}

/// Resolve the artifact path: under `--suite all` the given path is a
/// directory receiving the conventional `BENCH_<suite>.json` names.
fn artifact_path(base: &Path, suite: &str, multi: bool) -> PathBuf {
    if multi || base.is_dir() {
        base.join(format!("BENCH_{suite}.json"))
    } else {
        base.to_path_buf()
    }
}

fn validate(files: &[PathBuf]) -> ExitCode {
    let mut ok = true;
    for f in files {
        match std::fs::read_to_string(f)
            .map_err(|e| e.to_string())
            .and_then(|t| BenchReport::from_json(&t))
        {
            Ok(r) => println!(
                "{}: ok (suite {}, {} entries)",
                f.display(),
                r.suite,
                r.entries.len()
            ),
            Err(e) => {
                eprintln!("{}: INVALID: {e}", f.display());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn spec(opts: &Opts, id: &str, unit: &str) -> BenchSpec {
    BenchSpec::builder(id)
        .unit(unit)
        .warmup(opts.warmup)
        .repeats(opts.repeats)
        .build()
}

/// Construct an entry from already-collected samples (one per repeat).
fn entry(id: &str, unit: &str, samples: Vec<f64>, params: &[(&str, String)]) -> BenchEntry {
    BenchEntry {
        id: id.to_string(),
        unit: unit.to_string(),
        params: params
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        samples,
        gate: false,
    }
}

// ---------------------------------------------------------------- page

/// Page hot paths: encode, decode, full verification vs the cached
/// verified-once fast path, and per-page vs batched cache probes.
fn page_suite(opts: &Opts) -> BenchReport {
    let mut report = BenchReport::new("page", "Page encode/decode/verify and cache-probe costs");
    let rmat_scale = 12u32;
    let edges = Dataset::Rmat(rmat_scale).generate();
    let fmt = scale::page_format_small();
    let store = build_graph_store(&edges, fmt).expect("rmat fits page format");
    let pages = store.num_pages();
    let scale_param = [("rmat_scale", rmat_scale.to_string())];
    let pages_param = [
        ("rmat_scale", rmat_scale.to_string()),
        ("pages", pages.to_string()),
    ];

    report.push(
        spec(opts, "encode_store", "ns")
            .run(|| {
                black_box(build_graph_store(&edges, fmt).expect("encode"));
            })
            .param("rmat_scale", rmat_scale),
    );

    report.push(
        spec(opts, "decode_all_pages", "ns")
            .run(|| {
                let mut total = 0u64;
                for pid in 0..pages {
                    let v = store.view(pid);
                    total += u64::from(v.count());
                }
                black_box(total);
            })
            .param("rmat_scale", rmat_scale)
            .param("pages", pages),
    );

    // Full verification: fresh (never-verified) pages each sample, built
    // outside the timed region.
    let e = spec(opts, "verify_full", "ns").run_values(|| {
        let fresh = build_graph_store(&edges, fmt).expect("encode");
        let t0 = Instant::now();
        for pid in 0..pages {
            fresh.page(pid).verify(fmt).expect("sealed page verifies");
        }
        t0.elapsed().as_nanos() as f64
    });
    let full_med = e.median();
    report.push(entry("verify_full", "ns", e.samples, &pages_param));

    // Cached verification: the verified-once token path the sweep loop
    // hits every page access after the first.
    let e = spec(opts, "verify_cached", "ns").run_values(|| {
        let t0 = Instant::now();
        for pid in 0..pages {
            store.page(pid).verify(fmt).expect("verified page");
        }
        t0.elapsed().as_nanos() as f64
    });
    let cached_med = e.median();
    report.push(entry("verify_cached", "ns", e.samples, &pages_param));

    // The verified-once win as a ratio. Informational, not gated: the
    // token path is ~3-4 orders of magnitude below full verification,
    // so the ratio is a near-zero quantity whose run-to-run swing is
    // pure timer noise — a 20% relative gate on ~1e-4 would only ever
    // flake. (The *correctness* of the token path is pinned by the
    // storage crate's tests; this entry records the magnitude.)
    report.push(entry(
        "verify_cached_vs_full",
        "ratio",
        vec![if full_med > 0.0 {
            cached_med / full_med
        } else {
            0.0
        }],
        &scale_param,
    ));

    // Cache probes: one synthetic skewed trace, probed page-by-page vs
    // in SweepPlan-chunk-sized batches, across all three policies.
    let trace = probe_trace(100_000, 1 << 10);
    const CHUNK: usize = 64;
    type MakeCache = fn(usize) -> Box<dyn CachePolicy>;
    let policies: &[(&str, MakeCache)] = &[
        ("lru", |cap| Box::new(LruCache::new(cap))),
        ("fifo", |cap| Box::new(FifoCache::new(cap))),
        ("random", |cap| Box::new(RandomCache::new(cap, 0x6715))),
    ];
    for (name, make) in policies {
        let e = spec(opts, &format!("probe_single_{name}"), "ns").run_values(|| {
            let mut c = make(256);
            let t0 = Instant::now();
            let mut hits = 0u64;
            for &p in &trace {
                hits += u64::from(c.access(p));
            }
            black_box(hits);
            t0.elapsed().as_nanos() as f64
        });
        let single_med = e.median();
        report.push(entry(
            &format!("probe_single_{name}"),
            "ns",
            e.samples,
            &[("trace_len", trace.len().to_string())],
        ));

        let e = spec(opts, &format!("probe_batch_{name}"), "ns").run_values(|| {
            let mut c = make(256);
            let t0 = Instant::now();
            let mut hits = 0u64;
            for chunk in trace.chunks(CHUNK) {
                for h in c.probe_batch(chunk) {
                    hits += u64::from(h);
                }
            }
            black_box(hits);
            t0.elapsed().as_nanos() as f64
        });
        let batch_med = e.median();
        report.push(entry(
            &format!("probe_batch_{name}"),
            "ns",
            e.samples,
            &[
                ("trace_len", trace.len().to_string()),
                ("chunk", CHUNK.to_string()),
            ],
        ));

        let mut ratio = entry(
            &format!("probe_batch_vs_single_{name}"),
            "ratio",
            vec![if single_med > 0.0 {
                batch_med / single_med
            } else {
                0.0
            }],
            &[("chunk", CHUNK.to_string())],
        );
        ratio.gate = true;
        report.push(ratio);
    }
    report
}

/// A deterministic skewed pid trace (xorshift; low pids hot).
fn probe_trace(len: usize, universe: u64) -> Vec<u64> {
    let mut state = 0x2016_6715_u64 | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Square the unit draw: roughly Zipf-ish hot head.
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            ((u * u) * universe as f64) as u64 % universe
        })
        .collect()
}

// --------------------------------------------------------------- sweep

/// Host phase split: wall-clock phase A (kernels) vs phase B
/// (accounting) at 1 and 4 host threads, PageRank on the scaled engine.
fn sweep_suite(opts: &Opts) -> BenchReport {
    let mut report = BenchReport::new(
        "sweep",
        "Host phase A/B wall-clock split (measure_host_phases, 4 GPUs, 4 KiB pages)",
    );
    let rmat_scale = if opts.quick { 13 } else { 16 };
    let edges = Dataset::Rmat(rmat_scale).generate();
    // Deliberately small pages: phase B's work (outcome merges, cache
    // probes, per-target issues) scales with the page count, so this is
    // the regime where the phase-B split matters.
    let fmt = gts_storage::PageFormatConfig::new(gts_storage::PhysicalIdConfig::ORIGINAL, 4 * 1024);
    let store = build_graph_store(&edges, fmt).expect("store");
    let n = store.num_vertices();

    for alg in ["pagerank", "bfs"] {
        let mut b_median = [0.0f64; 2];
        for (ti, threads) in [1usize, 4].into_iter().enumerate() {
            let mut a_ns = Vec::new();
            let mut b_ns = Vec::new();
            let mut share = Vec::new();
            let mut wall = Vec::new();
            for i in 0..opts.warmup + opts.repeats.max(1) {
                let cfg = GtsConfig {
                    host_threads: threads,
                    measure_host_phases: true,
                    num_gpus: 4,
                    ..scale::gts_config()
                };
                let engine = Gts::new(cfg);
                let t0 = Instant::now();
                match alg {
                    "pagerank" => {
                        let mut pr = PageRank::new(n, 10);
                        engine.run(&store, &mut pr).expect("pagerank run");
                    }
                    _ => {
                        let mut bfs = Bfs::new(n, 0);
                        engine.run(&store, &mut bfs).expect("bfs run");
                    }
                }
                let w = t0.elapsed().as_nanos() as f64;
                let a = engine.telemetry().counter(keys::HOST_PHASE_A_NS) as f64;
                let b = engine.telemetry().counter(keys::HOST_PHASE_B_NS) as f64;
                if i >= opts.warmup {
                    a_ns.push(a);
                    b_ns.push(b);
                    share.push(if a + b > 0.0 { b / (a + b) } else { 0.0 });
                    wall.push(w);
                }
            }
            let params = [
                ("rmat_scale", rmat_scale.to_string()),
                ("alg", alg.to_string()),
                ("host_threads", threads.to_string()),
            ];
            report.push(entry(
                &format!("{alg}_host_phase_a_ns_t{threads}"),
                "ns",
                a_ns,
                &params,
            ));
            let b_entry = entry(
                &format!("{alg}_host_phase_b_ns_t{threads}"),
                "ns",
                b_ns,
                &params,
            );
            b_median[ti] = b_entry.median();
            report.push(b_entry);
            report.push(entry(
                &format!("{alg}_phase_b_share_t{threads}"),
                "share",
                share,
                &params,
            ));
            report.push(entry(
                &format!("{alg}_wall_ns_t{threads}"),
                "ns",
                wall,
                &params,
            ));
        }
        // The restructured phase B (parallel merge + batched probes
        // around the serial issue core) must never make 4 host threads
        // slower than 1 — the work-size thresholds exist precisely so
        // fan-out only engages when it wins. Gated at full scale so a
        // threshold gone wrong is caught; in `--quick` mode phase B is
        // a few hundred microseconds and the ratio is timer noise, so
        // the entry stays informational there.
        if b_median[0] > 0.0 {
            let mut ratio = entry(
                &format!("{alg}_phase_b_t4_vs_t1"),
                "ratio",
                vec![b_median[1] / b_median[0]],
                &[
                    ("rmat_scale", rmat_scale.to_string()),
                    ("alg", alg.to_string()),
                ],
            );
            ratio.gate = !opts.quick;
            report.push(ratio);
        }
    }
    report
}

// ----------------------------------------------------------------- e2e

/// End-to-end sweeps at paper scales RMAT22–26 (ours 12–16): PageRank
/// and BFS over the scaled engine streaming from a 2-SSD array. Wall
/// times are informational; simulated times are deterministic and gated.
fn e2e_suite(opts: &Opts) -> BenchReport {
    let mut report = BenchReport::new(
        "e2e",
        "End-to-end runs, paper RMAT22-26 at 1/1024 scale (ssd:2, 2 GPUs)",
    );
    let scales: Vec<u32> = if opts.quick {
        vec![12, 13]
    } else {
        vec![12, 13, 14, 15, 16]
    };
    for s in scales {
        let edges = Dataset::Rmat(s).generate();
        let store = build_graph_store(&edges, scale::page_format_small()).expect("store");
        let cfg = || GtsConfig {
            num_gpus: 2,
            storage: StorageLocation::Ssds(2),
            ..scale::gts_config()
        };
        let n = store.num_vertices();
        type RunAlg<'a> = Box<dyn Fn() -> (f64, f64) + 'a>;
        let algos: Vec<(&str, RunAlg<'_>)> = vec![
            (
                "pagerank",
                Box::new({
                    let store = &store;
                    move || {
                        let mut pr = PageRank::new(n, 10);
                        let t0 = Instant::now();
                        let rep = Gts::new(cfg()).run(store, &mut pr).expect("run");
                        (
                            t0.elapsed().as_nanos() as f64,
                            rep.elapsed.as_nanos() as f64,
                        )
                    }
                }),
            ),
            (
                "bfs",
                Box::new({
                    let store = &store;
                    move || {
                        let mut bfs = Bfs::new(n, 0);
                        let t0 = Instant::now();
                        let rep = Gts::new(cfg()).run(store, &mut bfs).expect("run");
                        (
                            t0.elapsed().as_nanos() as f64,
                            rep.elapsed.as_nanos() as f64,
                        )
                    }
                }),
            ),
        ];
        for (alg, run) in algos {
            let mut wall = Vec::new();
            let mut sim = Vec::new();
            for i in 0..opts.warmup + opts.repeats.max(1) {
                let (w, sm) = run();
                if i >= opts.warmup {
                    wall.push(w);
                    sim.push(sm);
                }
            }
            let params = [
                ("rmat_scale", s.to_string()),
                ("paper_rmat", scale::paper_rmat(s).to_string()),
                ("alg", alg.to_string()),
            ];
            report.push(entry(
                &format!("{alg}_rmat{s}_wall_ns"),
                "ns",
                wall,
                &params,
            ));
            let mut simulated = entry(&format!("{alg}_rmat{s}_sim_ns"), "ns", sim, &params);
            // Simulated time is bit-deterministic — any drift is a real
            // regression, so these entries anchor the CI gate.
            simulated.gate = true;
            report.push(simulated);
        }
    }
    report
}

// ------------------------------------------------------------ mutation

/// Update-while-query: the storage-level batch-apply cost, then whole
/// live runs — a batch landing mid-traversal (BFS at sweep 1) and one
/// reviving a converged sweep program (PageRank refresh past its last
/// iteration). Wall times are informational; simulated times are
/// deterministic and gated.
fn mutation_suite(opts: &Opts) -> BenchReport {
    let mut report = BenchReport::new(
        "mutation",
        "Update-while-query: batched edge mutations with epoch visibility (ssd:2, 2 GPUs)",
    );
    let scales: Vec<u32> = if opts.quick {
        vec![12]
    } else {
        vec![12, 13, 14]
    };
    let inserts = 256u64;
    let deletes = 64u64;
    let seed = 0x6715_2016u64;
    for s in scales {
        let edges = Dataset::Rmat(s).generate();
        let fmt = scale::page_format_small();

        // Raw storage cost: validate + rewrite + delta allocation + RVT
        // update for one batch, on a fresh store each sample.
        report.push(
            spec(opts, &format!("apply_batch_rmat{s}_ns"), "ns")
                .run_values(|| {
                    let mut store = build_graph_store(&edges, fmt).expect("store");
                    let batch = seeded_batch(&store, inserts, deletes, seed);
                    let t0 = Instant::now();
                    black_box(store.apply_mutations(&batch).expect("apply"));
                    t0.elapsed().as_nanos() as f64
                })
                .param("rmat_scale", s)
                .param("inserts", inserts)
                .param("deletes", deletes),
        );

        let cfg = || GtsConfig {
            num_gpus: 2,
            storage: StorageLocation::Ssds(2),
            ..scale::gts_config()
        };
        type RunAlg<'a> = Box<dyn Fn() -> (f64, f64) + 'a>;
        let algos: Vec<(&str, u32, RunAlg<'_>)> = vec![
            (
                "bfs_live",
                1,
                Box::new({
                    let edges = &edges;
                    move || {
                        let mut store = build_graph_store(edges, fmt).expect("store");
                        let batch = seeded_batch(&store, inserts, deletes, seed);
                        let mut bfs = Bfs::new(store.num_vertices(), 0);
                        let t0 = Instant::now();
                        let rep = Gts::new(cfg())
                            .run_live(&mut store, &mut bfs, MutationSchedule::new().at(1, batch))
                            .expect("run");
                        (
                            t0.elapsed().as_nanos() as f64,
                            rep.elapsed.as_nanos() as f64,
                        )
                    }
                }),
            ),
            (
                // Batch scheduled past Fixed(10)'s convergence: the run
                // revives for exactly one refresh sweep over the mutated
                // topology.
                "pagerank_live",
                20,
                Box::new({
                    let edges = &edges;
                    move || {
                        let mut store = build_graph_store(edges, fmt).expect("store");
                        let batch = seeded_batch(&store, inserts, deletes, seed);
                        let mut pr = PageRank::new(store.num_vertices(), 10);
                        let t0 = Instant::now();
                        let rep = Gts::new(cfg())
                            .run_live(&mut store, &mut pr, MutationSchedule::new().at(20, batch))
                            .expect("run");
                        (
                            t0.elapsed().as_nanos() as f64,
                            rep.elapsed.as_nanos() as f64,
                        )
                    }
                }),
            ),
        ];
        for (alg, at, run) in algos {
            let mut wall = Vec::new();
            let mut sim = Vec::new();
            for i in 0..opts.warmup + opts.repeats.max(1) {
                let (w, sm) = run();
                if i >= opts.warmup {
                    wall.push(w);
                    sim.push(sm);
                }
            }
            let params = [
                ("rmat_scale", s.to_string()),
                ("alg", alg.to_string()),
                ("mutate_at", at.to_string()),
                ("inserts", inserts.to_string()),
                ("deletes", deletes.to_string()),
            ];
            report.push(entry(
                &format!("{alg}_rmat{s}_wall_ns"),
                "ns",
                wall,
                &params,
            ));
            let mut simulated = entry(&format!("{alg}_rmat{s}_sim_ns"), "ns", sim, &params);
            // Simulated time is bit-deterministic — any drift is a real
            // regression, so these entries anchor the CI gate.
            simulated.gate = true;
            report.push(simulated);
        }
    }
    report
}

// --------------------------------------------------------------- serve

/// Multi-tenant serve mode: the synthetic mixed read/mutate workload
/// through the FIFO scheduler at 1, 4, and 16 concurrent tenants, with
/// one service slot per tenant. Wall times are informational; simulated
/// makespan, throughput, and latency percentiles are deterministic and
/// gated. `--quick` trims the tenancy levels, never the per-level
/// workload, so quick entries stay comparable to the checked-in
/// full-run baseline.
fn serve_suite(opts: &Opts) -> BenchReport {
    let mut report = BenchReport::new(
        "serve",
        "Multi-tenant serve throughput and latency percentiles (ssd:2, 2 GPUs)",
    );
    let rmat_scale = 12u32;
    let edges = Dataset::Rmat(rmat_scale).generate();
    let fmt = scale::page_format_small();
    let jobs_per_tenant = 4u32;
    let seed = 0x6715_2016u64;
    let levels: &[usize] = if opts.quick { &[1, 4] } else { &[1, 4, 16] };
    for &tenants in levels {
        let workload = synthetic(tenants as u32, jobs_per_tenant, seed, true);
        let serve_cfg = ServeConfig {
            slots: tenants,
            // The suite measures saturated throughput, not admission
            // control: caps sized so nothing drops.
            queue_capacity: workload.len().max(64),
            tenant_queue_capacity: workload.len().max(16),
            deadline_ns: None,
            ..ServeConfig::default()
        };
        let mut wall = Vec::new();
        let mut makespan = Vec::new();
        let mut throughput = Vec::new();
        let mut percentiles = [Vec::new(), Vec::new(), Vec::new()];
        for i in 0..opts.warmup + opts.repeats.max(1) {
            // Fresh store every sample: the workload mutates it.
            let mut store = build_graph_store(&edges, fmt).expect("store");
            let engine = Engine::new(GtsConfig {
                num_gpus: 2,
                storage: StorageLocation::Ssds(2),
                ..scale::gts_config()
            })
            .expect("valid engine config");
            let t0 = Instant::now();
            let out = serve(&engine, &mut store, &workload, &serve_cfg).expect("serve");
            let w = t0.elapsed().as_nanos() as f64;
            assert_eq!(out.completed, workload.len(), "caps sized for zero drops");
            if i >= opts.warmup {
                wall.push(w);
                makespan.push(out.makespan_ns as f64);
                let secs = out.makespan_ns as f64 / 1e9;
                throughput.push(if secs > 0.0 {
                    out.completed as f64 / secs
                } else {
                    0.0
                });
                for (slot, p) in [(0usize, 50u32), (1, 95), (2, 99)] {
                    let v = out.telemetry.percentile("serve.lat.all", p).unwrap_or(0);
                    percentiles[slot].push(v as f64);
                }
            }
        }
        let params = [
            ("rmat_scale", rmat_scale.to_string()),
            ("tenants", tenants.to_string()),
            ("slots", tenants.to_string()),
            ("jobs", (tenants as u32 * jobs_per_tenant).to_string()),
        ];
        report.push(entry(
            &format!("serve_c{tenants}_wall_ns"),
            "ns",
            wall,
            &params,
        ));
        let gated: [(&str, &str, Vec<f64>); 5] = [
            ("makespan_sim_ns", "ns", makespan),
            ("throughput_jobs_s", "jobs/s", throughput),
            ("lat_p50_ns", "ns", percentiles[0].clone()),
            ("lat_p95_ns", "ns", percentiles[1].clone()),
            ("lat_p99_ns", "ns", percentiles[2].clone()),
        ];
        for (name, unit, samples) in gated {
            let mut e = entry(&format!("serve_c{tenants}_{name}"), unit, samples, &params);
            // Scheduling runs on the simulated clock — makespan,
            // throughput, and latency percentiles are bit-deterministic,
            // so any drift is a real regression.
            e.gate = true;
            report.push(e);
        }
    }
    report
}

// ----------------------------------------------------------------- wal

/// Durability hot paths: the log-before-apply tax over a bare batch
/// apply, crash-recovery replay of the full chain, torn-tail repair on
/// reopen, and the background scrub's checksum walk. Every entry is
/// real wall-clock (the WAL fsyncs real files), so all stay
/// informational — the CI bench-smoke job validates the artifact, it
/// does not gate on fsync latency.
fn wal_suite(opts: &Opts) -> BenchReport {
    use gts_storage::{Wal, WAL_FILE};

    let mut report = BenchReport::new(
        "wal",
        "Durability: WAL append/replay/repair and scrub checksum walk",
    );
    let rmat_scale = 12u32;
    let edges = Dataset::Rmat(rmat_scale).generate();
    let fmt = scale::page_format_small();
    let base = build_graph_store(&edges, fmt).expect("store");
    let chain = if opts.quick { 4u64 } else { 8 };
    let inserts = 128u64;
    let deletes = 32u64;
    let seed = 0x6715_2016u64;
    let params = [
        ("rmat_scale", rmat_scale.to_string()),
        ("chain", chain.to_string()),
        ("inserts", inserts.to_string()),
        ("deletes", deletes.to_string()),
    ];

    // Every timed sample gets its own scratch directory: the WAL is a
    // real fsynced file, and recycling a log across samples would turn
    // appends into idempotent no-ops.
    let scratch_n = std::sync::atomic::AtomicU32::new(0);
    let scratch = |tag: &str| {
        let n = scratch_n.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut p = std::env::temp_dir();
        p.push(format!("gts-bench-wal-{}-{tag}-{n}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    };

    let tag = |mut e: BenchEntry| {
        e.params = params
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        e
    };

    // The same deterministic batch chain drives every entry: each batch
    // is seeded from the store state it lands on.
    let next_batch = |store: &gts_storage::GraphStore| {
        seeded_batch(store, inserts, deletes, seed ^ store.epoch())
    };

    // Baseline: the chain applied with no log at all.
    report.push(tag(spec(opts, "apply_chain_plain_ns", "ns").run_values(
        || {
            let mut store = base.clone();
            let t0 = Instant::now();
            for _ in 0..chain {
                let b = next_batch(&store);
                store.apply_mutations(&b).expect("apply");
            }
            t0.elapsed().as_nanos() as f64
        },
    )));
    let plain_med = report.entries.last().expect("just pushed").median();

    // Log-before-apply: the same chain through `apply_mutations_logged`,
    // paying a sealed fsynced append per batch.
    report.push(tag(spec(opts, "apply_chain_logged_ns", "ns").run_values(
        || {
            let mut store = base.clone();
            let dir = scratch("logged");
            let mut wal = Wal::open(&dir, &store).expect("fresh wal");
            let t0 = Instant::now();
            for _ in 0..chain {
                let b = next_batch(&store);
                store.apply_mutations_logged(&b, &mut wal).expect("apply");
            }
            let ns = t0.elapsed().as_nanos() as f64;
            std::fs::remove_dir_all(&dir).ok();
            ns
        },
    )));
    let logged_med = report.entries.last().expect("just pushed").median();
    report.push(entry(
        "logged_vs_plain",
        "ratio",
        vec![if plain_med > 0.0 {
            logged_med / plain_med
        } else {
            0.0
        }],
        &params,
    ));

    // One sealed chain on disk, reused (read-only) by the recovery
    // entries below.
    let sealed_dir = scratch("sealed");
    let tip_batch = {
        let mut store = base.clone();
        let mut wal = Wal::open(&sealed_dir, &store).expect("fresh wal");
        for _ in 0..chain {
            let b = next_batch(&store);
            store.apply_mutations_logged(&b, &mut wal).expect("apply");
        }
        next_batch(&store)
    };
    let sealed_log = sealed_dir.join(WAL_FILE);

    // Crash recovery: load the sealed chain and replay all of it onto
    // the base-epoch store — the cost of coming back from a snapshot
    // that predates every logged batch.
    report.push(tag(spec(opts, "recover_replay_ns", "ns").run_values(
        || {
            let mut store = base.clone();
            let t0 = Instant::now();
            let wal = Wal::load(&sealed_dir).expect("sealed log loads");
            let applied = wal.replay_onto(&mut store).expect("replay");
            let ns = t0.elapsed().as_nanos() as f64;
            assert_eq!(applied, chain, "whole chain replays");
            ns
        },
    )));

    // Torn-tail repair: a half-written append after the sealed chain,
    // truncated (and re-fsynced) by the next `Wal::open`.
    report.push(tag(spec(opts, "reopen_repair_ns", "ns").run_values(|| {
        let dir = scratch("repair");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::copy(&sealed_log, dir.join(WAL_FILE)).expect("copy sealed log");
        let mut torn = Wal::load(&dir).expect("sealed log loads");
        torn.log_batch_torn(&tip_batch, chain, chain + 1)
            .expect("torn append");
        let t0 = Instant::now();
        let repaired = Wal::open(&dir, &base).expect("repair");
        let ns = t0.elapsed().as_nanos() as f64;
        assert_eq!(repaired.records().len() as u64, chain, "tail dropped");
        std::fs::remove_dir_all(&dir).ok();
        ns
    })));
    std::fs::remove_dir_all(&sealed_dir).ok();

    // The scrub pass: one full checksum walk over the page set, the
    // per-interval cost `--scrub-every N` buys.
    let pages = base.num_pages();
    report.push(
        spec(opts, "scrub_walk_ns", "ns")
            .run(|| {
                let mut ok = 0u64;
                for pid in 0..pages {
                    ok += u64::from(base.page(pid).checksum_ok());
                }
                black_box(ok);
            })
            .param("rmat_scale", rmat_scale)
            .param("pages", pages),
    );
    report
}
