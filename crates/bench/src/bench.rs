//! The wall-clock benchmark harness: [`BenchSpec`] → [`BenchReport`].
//!
//! The figure/table benches replay the paper's *simulated* evaluation;
//! this module measures the *reproduction itself* — real nanoseconds on
//! the machine running it — under a fixed protocol: `warmup` discarded
//! runs, then `repeats` recorded samples, summarised by the median (the
//! repeat-robust central tendency; min/max are kept for dispersion).
//!
//! Reports serialise to a small hand-rolled JSON dialect (the workspace
//! deliberately has no serde) under the schema tag
//! [`SCHEMA`], so checked-in `BENCH_*.json` files are diffable,
//! machine-readable, and validated in CI. Entries are either
//! *informational* (raw nanoseconds — machine-dependent, never gated) or
//! *gated* (ratios, shares, and simulated times — stable across
//! machines), and [`BenchReport::compare`] enforces a relative tolerance
//! on the gated ones against a baseline report.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Instant;

/// Schema tag every report carries; bump on incompatible changes.
pub const SCHEMA: &str = "gts-bench-report/v1";

/// The measurement protocol for one benchmark: how many discarded warmup
/// runs and recorded repeats, and what unit the samples are in.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Entry identifier (unique within a suite), e.g. `"page_encode"`.
    pub id: String,
    /// Unit of every sample, e.g. `"ns"`, `"ratio"`, `"share"`.
    pub unit: String,
    /// Discarded runs before sampling starts.
    pub warmup: u32,
    /// Recorded samples.
    pub repeats: u32,
}

/// Builder for [`BenchSpec`]; start with [`BenchSpec::builder`].
#[derive(Debug, Clone)]
pub struct BenchSpecBuilder {
    spec: BenchSpec,
}

impl BenchSpec {
    /// A spec for entry `id` with the default protocol: 1 warmup,
    /// 5 repeats, nanosecond samples.
    pub fn builder(id: &str) -> BenchSpecBuilder {
        BenchSpecBuilder {
            spec: BenchSpec {
                id: id.to_string(),
                unit: "ns".to_string(),
                warmup: 1,
                repeats: 5,
            },
        }
    }

    /// Run `body` under the protocol (`warmup` discarded, `repeats`
    /// recorded), timing each run; samples are wall nanoseconds.
    pub fn run(&self, mut body: impl FnMut()) -> BenchEntry {
        let mut samples = Vec::with_capacity(self.repeats as usize);
        for i in 0..self.warmup + self.repeats.max(1) {
            let t0 = Instant::now();
            body();
            let ns = t0.elapsed().as_nanos() as f64;
            if i >= self.warmup {
                samples.push(ns);
            }
        }
        self.entry(samples)
    }

    /// Run `body` under the protocol, recording whatever value it
    /// returns instead of timing it (for derived quantities: ratios,
    /// shares, simulated nanoseconds).
    pub fn run_values(&self, mut body: impl FnMut() -> f64) -> BenchEntry {
        let mut samples = Vec::with_capacity(self.repeats as usize);
        for i in 0..self.warmup + self.repeats.max(1) {
            let v = body();
            if i >= self.warmup {
                samples.push(v);
            }
        }
        self.entry(samples)
    }

    fn entry(&self, samples: Vec<f64>) -> BenchEntry {
        BenchEntry {
            id: self.id.clone(),
            unit: self.unit.clone(),
            params: Vec::new(),
            samples,
            gate: false,
        }
    }
}

impl BenchSpecBuilder {
    /// Unit of the recorded samples (default `"ns"`).
    pub fn unit(mut self, unit: &str) -> Self {
        self.spec.unit = unit.to_string();
        self
    }

    /// Discarded warmup runs (default 1).
    pub fn warmup(mut self, warmup: u32) -> Self {
        self.spec.warmup = warmup;
        self
    }

    /// Recorded repeats (default 5; clamped to at least 1 when run).
    pub fn repeats(mut self, repeats: u32) -> Self {
        self.spec.repeats = repeats;
        self
    }

    /// Finish the spec.
    pub fn build(self) -> BenchSpec {
        self.spec
    }
}

/// One benchmark's recorded samples plus identifying parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Entry identifier, unique within its suite.
    pub id: String,
    /// Unit of the samples.
    pub unit: String,
    /// Identifying parameters (`("scale", "14")`, …), in display order.
    pub params: Vec<(String, String)>,
    /// The recorded samples, in run order.
    pub samples: Vec<f64>,
    /// Whether [`BenchReport::compare`] regresses this entry against a
    /// baseline. Only machine-robust quantities (ratios, shares,
    /// simulated times) should be gated; raw wall times are
    /// informational.
    pub gate: bool,
}

impl BenchEntry {
    /// Attach an identifying parameter (builder-style).
    pub fn param(mut self, key: &str, value: impl ToString) -> Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Mark the entry as regression-gated (builder-style).
    pub fn gated(mut self) -> Self {
        self.gate = true;
        self
    }

    /// Median sample — the entry's headline value (0 when empty).
    pub fn median(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mid = s.len() / 2;
        if s.len() % 2 == 1 {
            s[mid]
        } else {
            (s[mid - 1] + s[mid]) / 2.0
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

/// A suite's worth of [`BenchEntry`]s, serialisable to/from JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Suite name (`"page"`, `"sweep"`, `"e2e"`).
    pub suite: String,
    /// Human title shown by the table formatter.
    pub title: String,
    /// The entries, in insertion order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// An empty report for `suite`.
    pub fn new(suite: &str, title: &str) -> BenchReport {
        BenchReport {
            suite: suite.to_string(),
            title: title.to_string(),
            entries: Vec::new(),
        }
    }

    /// Append an entry.
    pub fn push(&mut self, entry: BenchEntry) {
        self.entries.push(entry);
    }

    /// Entry by id, if present.
    pub fn entry(&self, id: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Serialise to the `gts-bench-report/v1` JSON dialect (pretty,
    /// newline-terminated — the checked-in artifact format).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(SCHEMA));
        let _ = writeln!(out, "  \"suite\": {},", json_str(&self.suite));
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(
                out,
                "\"id\": {}, \"unit\": {}, \"gate\": {}, \"median\": {}, ",
                json_str(&e.id),
                json_str(&e.unit),
                e.gate,
                json_num(e.median()),
            );
            out.push_str("\"params\": {");
            for (j, (k, v)) in e.params.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_str(k), json_str(v));
            }
            out.push_str("}, \"samples\": [");
            for (j, s) in e.samples.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_num(*s));
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a report back from [`BenchReport::to_json`] output (or any
    /// JSON with the same shape). Rejects missing fields and a wrong
    /// schema tag with a descriptive error — this is also the CI
    /// artifact validator.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj("report")?;
        let schema = obj.get_str("schema")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let mut report = BenchReport::new(&obj.get_str("suite")?, &obj.get_str("title")?);
        for (i, e) in obj.get_arr("entries")?.iter().enumerate() {
            let e = e.as_obj(&format!("entries[{i}]"))?;
            let mut entry = BenchEntry {
                id: e.get_str("id")?,
                unit: e.get_str("unit")?,
                params: Vec::new(),
                samples: Vec::new(),
                gate: e.get_bool("gate")?,
            };
            for (k, v) in &e.get_obj("params")?.fields {
                entry.params.push((k.clone(), v.as_str(k)?.to_string()));
            }
            for (j, s) in e.get_arr("samples")?.iter().enumerate() {
                entry.samples.push(s.as_num(&format!("samples[{j}]"))?);
            }
            report.push(entry);
        }
        Ok(report)
    }

    /// Write the JSON artifact to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        fs::write(path, self.to_json())
    }

    /// Regression check: every **gated** entry of `self` whose median
    /// exceeds the matching baseline entry's median by more than
    /// `tolerance` (relative) yields one violation line. Entries absent
    /// from the baseline, and informational entries, are skipped — new
    /// benchmarks must not fail the gate retroactively.
    pub fn compare(&self, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        for e in self.entries.iter().filter(|e| e.gate) {
            let Some(base) = baseline.entry(&e.id) else {
                continue;
            };
            let (new, old) = (e.median(), base.median());
            if old > 0.0 && new > old * (1.0 + tolerance) {
                violations.push(format!(
                    "{}/{}: {} {} vs baseline {} (+{:.1}% > {:.0}% tolerance)",
                    self.suite,
                    e.id,
                    json_num(new),
                    e.unit,
                    json_num(old),
                    (new / old - 1.0) * 100.0,
                    tolerance * 100.0,
                ));
            }
        }
        violations
    }
}

/// JSON string literal (escapes quotes, backslashes, control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite shortest-round-trip; non-finite values (which
/// JSON cannot carry) degrade to 0.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A minimal JSON reader — just enough for the report dialect (objects,
/// arrays, strings, numbers, booleans, null). No serde in the workspace
/// by design.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number, as `f64`.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, fields in document order.
        Obj(Obj),
    }

    /// An object's fields, in document order (duplicates keep last).
    #[derive(Debug, Clone, PartialEq, Default)]
    pub struct Obj {
        /// `(key, value)` pairs.
        pub fields: Vec<(String, Value)>,
    }

    impl Obj {
        fn get(&self, key: &str) -> Result<&Value, String> {
            self.fields
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}"))
        }

        /// Required string field.
        pub fn get_str(&self, key: &str) -> Result<String, String> {
            Ok(self.get(key)?.as_str(key)?.to_string())
        }

        /// Required boolean field.
        pub fn get_bool(&self, key: &str) -> Result<bool, String> {
            match self.get(key)? {
                Value::Bool(b) => Ok(*b),
                other => Err(format!("{key:?}: expected bool, got {other:?}")),
            }
        }

        /// Required array field.
        pub fn get_arr(&self, key: &str) -> Result<&[Value], String> {
            match self.get(key)? {
                Value::Arr(a) => Ok(a),
                other => Err(format!("{key:?}: expected array, got {other:?}")),
            }
        }

        /// Required object field.
        pub fn get_obj(&self, key: &str) -> Result<&Obj, String> {
            match self.get(key)? {
                Value::Obj(o) => Ok(o),
                other => Err(format!("{key:?}: expected object, got {other:?}")),
            }
        }
    }

    impl Value {
        /// This value as a string.
        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                other => Err(format!("{what}: expected string, got {other:?}")),
            }
        }

        /// This value as a number.
        pub fn as_num(&self, what: &str) -> Result<f64, String> {
            match self {
                Value::Num(n) => Ok(*n),
                other => Err(format!("{what}: expected number, got {other:?}")),
            }
        }

        /// This value as an object.
        pub fn as_obj(&self, what: &str) -> Result<&Obj, String> {
            match self {
                Value::Obj(o) => Ok(o),
                other => Err(format!("{what}: expected object, got {other:?}")),
            }
        }
    }

    /// Parse `text` as a single JSON value (trailing whitespace only).
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut obj = Obj::default();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(obj));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            expect(b, pos, b':')?;
            obj.fields.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(obj));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut arr = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(arr));
        }
        loop {
            arr.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(arr));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_discards_warmup_and_records_repeats() {
        let spec = BenchSpec::builder("x")
            .warmup(2)
            .repeats(3)
            .unit("count")
            .build();
        let mut calls = 0u32;
        let entry = spec.run_values(|| {
            calls += 1;
            calls as f64
        });
        assert_eq!(calls, 5, "2 warmup + 3 recorded");
        assert_eq!(entry.samples, vec![3.0, 4.0, 5.0]);
        assert_eq!(entry.median(), 4.0);
        assert_eq!(entry.min(), 3.0);
        assert_eq!(entry.max(), 5.0);
    }

    #[test]
    fn median_of_even_sample_count_averages_the_middle_pair() {
        let spec = BenchSpec::builder("x").warmup(0).repeats(4).build();
        let mut v = [9.0, 1.0, 5.0, 3.0].into_iter();
        let entry = spec.run_values(|| v.next().unwrap());
        assert_eq!(entry.median(), 4.0);
    }

    #[test]
    fn json_round_trips_exactly() {
        let mut report = BenchReport::new("page", "Page hot paths");
        report.push(
            BenchSpec::builder("encode")
                .warmup(0)
                .repeats(3)
                .build()
                .run_values({
                    let mut i = 0.0;
                    move || {
                        i += 1.5;
                        i
                    }
                })
                .param("scale", 12)
                .param("kind", "small"),
        );
        report.push(
            BenchSpec::builder("probe_ratio")
                .unit("ratio")
                .warmup(0)
                .repeats(1)
                .build()
                .run_values(|| 0.875)
                .gated(),
        );
        let text = report.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        // The artifact is pretty-printed and newline-terminated.
        assert!(text.ends_with("]\n}\n"), "{text}");
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_garbage() {
        let good = BenchReport::new("s", "t").to_json();
        let bad = good.replace(SCHEMA, "gts-bench-report/v0");
        assert!(BenchReport::from_json(&bad).unwrap_err().contains("schema"));
        assert!(BenchReport::from_json("{").is_err());
        assert!(BenchReport::from_json("{} junk").is_err());
    }

    #[test]
    fn compare_gates_only_gated_entries_within_tolerance() {
        let entry = |id: &str, v: f64, gate: bool| BenchEntry {
            id: id.to_string(),
            unit: "ratio".to_string(),
            params: Vec::new(),
            samples: vec![v],
            gate,
        };
        let mut base = BenchReport::new("s", "t");
        base.push(entry("a", 1.0, true));
        base.push(entry("b", 1.0, false));
        let mut new = BenchReport::new("s", "t");
        new.push(entry("a", 1.1, true)); // +10% — inside 20%
        new.push(entry("b", 9.0, false)); // ungated — ignored
        new.push(entry("c", 9.0, true)); // not in baseline — ignored
        assert!(new.compare(&base, 0.2).is_empty());
        let mut worse = BenchReport::new("s", "t");
        worse.push(entry("a", 1.5, true)); // +50% — violation
        let v = worse.compare(&base, 0.2);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("s/a"), "{v:?}");
    }
}
