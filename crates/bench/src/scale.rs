//! The 1/1024 scale mapping and pre-configured engines.
//!
//! | Quantity | Paper | Here |
//! |---|---|---|
//! | RMAT scale | 27..32 | 17..22 |
//! | GPU device memory | 12 GiB | 12 MiB |
//! | Host memory (workstation) | 128 GiB | 128 MiB |
//! | Cluster node memory | 64 GiB | 64 MiB |
//! | Page size ((2,2) datasets) | ~1 MiB | 64 KiB |
//! | Bandwidths (PCI-E, SSD, network) | unscaled | unscaled |
//!
//! With these numbers the paper's qualitative boundaries reproduce:
//! Strategy-P PageRank OOMs beyond our RMAT20/21 (paper: beyond RMAT30),
//! TOTEM's contiguous host CSR dies at our RMAT20 (paper: RMAT30), the
//! CPU engines die at our RMAT19 (paper: RMAT29), the JVM cluster engines
//! die around our RMAT20/21 (paper: RMAT30/31) and PowerGraph one scale
//! later.

use gts_baselines::cluster::ClusterConfig;
use gts_baselines::cpu::{CpuEngine, CpuProfile};
use gts_baselines::totem::TotemConfig;
use gts_core::engine::GtsConfig;
use gts_gpu::GpuConfig;
use gts_graph::Dataset;
use gts_storage::{PageFormatConfig, PhysicalIdConfig};

/// log2 of the scale factor: capacities ÷ 2^10, RMAT scales − 10.
pub const SCALE_SHIFT: u32 = 10;

/// Scaled GPU device memory (TITAN X 12 GiB → 12 MiB).
pub const DEVICE_MEMORY: u64 = 12 << 20;

/// Scaled workstation host memory (128 GiB → 128 MiB).
pub const HOST_MEMORY_DIV: u64 = 1 << SCALE_SHIFT;

/// Paper-equivalent RMAT scale for one of ours.
pub fn paper_rmat(ours: u32) -> u32 {
    ours + SCALE_SHIFT
}

/// The scaled GPU.
pub fn gpu() -> GpuConfig {
    GpuConfig::titan_x().with_device_memory(DEVICE_MEMORY)
}

/// The page format used for the smaller datasets (paper's (2,2)).
pub fn page_format_small() -> PageFormatConfig {
    PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 64 * 1024)
}

/// The page format used for RMAT20+ (the paper's (3,3) trillion-scale
/// addressing; the page size stays 64 KiB so the streaming-buffer share of
/// device memory matches the paper's proportions).
pub fn page_format_large() -> PageFormatConfig {
    PageFormatConfig::new(PhysicalIdConfig::TRILLION, 64 * 1024)
}

/// Format choice per dataset, mirroring the paper's Table 3 policy
/// ((2,2) for real graphs and RMAT up to 29; (3,3) for RMAT30-32).
pub fn page_format_for(d: Dataset) -> PageFormatConfig {
    // Exhaustive on purpose: a new dataset variant must consciously pick
    // its addressing class instead of silently inheriting (2,2).
    match d {
        Dataset::Rmat(s) if s >= 20 => page_format_large(),
        Dataset::Rmat(_) | Dataset::TwitterLike | Dataset::Uk2007Like | Dataset::YahooWebLike => {
            page_format_small()
        }
    }
}

/// The default scaled GTS engine configuration (1 GPU, 16 streams,
/// in-memory topology).
pub fn gts_config() -> GtsConfig {
    GtsConfig {
        gpu: gpu(),
        ..GtsConfig::default()
    }
}

/// The scaled cluster for the distributed baselines.
pub fn cluster() -> ClusterConfig {
    ClusterConfig::scaled(1 << SCALE_SHIFT)
}

/// A framework profile with its fixed per-superstep cost scaled to match
/// the workload scale.
pub fn framework(
    p: gts_baselines::cluster::FrameworkProfile,
) -> gts_baselines::cluster::FrameworkProfile {
    p.scaled(1 << SCALE_SHIFT)
}

/// A scaled CPU engine for the given profile.
pub fn cpu_engine(profile: CpuProfile) -> CpuEngine {
    CpuEngine::new(profile).with_scaled_memory(1 << SCALE_SHIFT)
}

/// A scaled TOTEM configuration.
pub fn totem_config() -> TotemConfig {
    TotemConfig::new(gpu()).with_scaled_host_memory(1 << SCALE_SHIFT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_consistent() {
        assert_eq!(paper_rmat(22), 32);
        assert_eq!(DEVICE_MEMORY, (12u64 << 30) >> SCALE_SHIFT);
        assert_eq!(cluster().memory_per_node, (64u64 << 30) >> SCALE_SHIFT);
    }

    #[test]
    fn formats_follow_table3_policy() {
        assert_eq!(
            page_format_for(Dataset::Rmat(18)).id,
            PhysicalIdConfig::ORIGINAL
        );
        assert_eq!(
            page_format_for(Dataset::Rmat(21)).id,
            PhysicalIdConfig::TRILLION
        );
        assert_eq!(
            page_format_for(Dataset::TwitterLike).id,
            PhysicalIdConfig::ORIGINAL
        );
    }
}
