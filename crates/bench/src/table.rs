//! Experiment output formatting: aligned console tables plus CSV files
//! under `target/experiments/` for downstream plotting.
//!
//! Rendering is pure — [`render`] and [`to_csv`] turn a header and rows
//! into strings without touching the filesystem or stdout — and every
//! consumer goes through the same two functions: [`ExperimentTable`]
//! (the figure/table benches' accumulator) and [`report_table`] (the
//! tabular view of a wall-clock [`BenchReport`]).

use crate::bench::BenchReport;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple experiment table: header row plus data rows, printed aligned
/// and mirrored to `target/experiments/<id>.csv`.
pub struct ExperimentTable {
    id: String,
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Start a table for experiment `id` (e.g. `"fig6_bfs"`).
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        ExperimentTable {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Print to stdout and write the CSV; returns the CSV path.
    pub fn finish(&self) -> PathBuf {
        print!(
            "{}",
            render(&self.id, &self.title, &self.header, &self.rows)
        );

        let dir = out_dir();
        fs::create_dir_all(&dir).expect("create experiments dir");
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = fs::File::create(&path).expect("create csv");
        write!(f, "{}", to_csv(&self.header, &self.rows)).expect("write csv");
        println!("  -> {}", path.display());
        path
    }
}

/// Render an aligned console table (pure; includes the leading blank
/// line and title banner the benches have always printed).
pub fn render(id: &str, title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        format!("  {}\n", line.join("  "))
    };
    let mut out = format!("\n== {id} — {title} ==\n");
    out.push_str(&fmt_row(header));
    out.push_str(&format!(
        "  {}\n",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out
}

/// Render the CSV body (pure): header line plus one line per row.
pub fn to_csv(header: &[String], rows: &[Vec<String>]) -> String {
    let mut out = format!("{}\n", header.join(","));
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// The tabular view of a wall-clock benchmark report: one row per entry
/// (id, parameters flattened to `k=v`, median/min/max in the entry's
/// unit, and whether the entry is regression-gated).
pub fn report_table(report: &BenchReport) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        &format!("bench_{}", report.suite),
        &report.title,
        &["entry", "params", "median", "min", "max", "unit", "gated"],
    );
    for e in &report.entries {
        let params = e
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(vec![
            e.id.clone(),
            params,
            format!("{:.1}", e.median()),
            format!("{:.1}", e.min()),
            format!("{:.1}", e.max()),
            e.unit.clone(),
            if e.gate { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// Where experiment CSVs land.
pub fn out_dir() -> PathBuf {
    // target/ of the workspace regardless of cwd quirk under cargo bench.
    let mut dir = std::env::current_dir().expect("cwd");
    while !dir.join("Cargo.toml").exists() || !dir.join("crates").exists() {
        if !dir.pop() {
            return PathBuf::from("target/experiments");
        }
    }
    dir.join("target").join("experiments")
}

/// Format a simulated duration in seconds with 4 significant digits.
pub fn secs(d: gts_sim::SimDuration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Format an outcome: seconds or `O.O.M.` — the figures' failure cells.
pub fn secs_or_oom<E>(r: &Result<gts_sim::SimDuration, E>) -> String {
    match r {
        Ok(d) => secs(*d),
        Err(_) => "O.O.M.".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{BenchEntry, BenchReport};
    use gts_sim::SimDuration;

    #[test]
    fn table_roundtrip_writes_csv() {
        let mut t = ExperimentTable::new("test_table", "unit test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.finish();
        let body = fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = ExperimentTable::new("x", "y", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn render_is_aligned_and_pure() {
        let header = vec!["col".to_string(), "wide_column".to_string()];
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        let s = render("id", "title", &header, &rows);
        assert!(s.starts_with("\n== id — title ==\n"));
        assert!(s.contains("col  wide_column"));
        assert!(s.contains("  1            2"), "{s}");
        assert_eq!(to_csv(&header, &rows), "col,wide_column\n1,2\n");
    }

    #[test]
    fn report_table_flattens_entries() {
        let mut r = BenchReport::new("page", "Page hot paths");
        r.push(BenchEntry {
            id: "encode".to_string(),
            unit: "ns".to_string(),
            params: vec![("scale".to_string(), "12".to_string())],
            samples: vec![2.0, 4.0, 6.0],
            gate: true,
        });
        let t = report_table(&r);
        let s = render(&t.id, &t.title, &t.header, &t.rows);
        assert!(s.contains("bench_page"));
        assert!(s.contains("scale=12"));
        assert!(s.contains("4.0"), "{s}");
        assert!(s.contains("yes"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(SimDuration::from_millis(1500)), "1.5000");
        let ok: Result<SimDuration, ()> = Ok(SimDuration::from_secs(2));
        let err: Result<SimDuration, ()> = Err(());
        assert_eq!(secs_or_oom(&ok), "2.0000");
        assert_eq!(secs_or_oom(&err), "O.O.M.");
    }
}
