//! Experiment output: aligned console tables plus CSV files under
//! `target/experiments/` for downstream plotting.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple experiment table: header row plus data rows, printed aligned
/// and mirrored to `target/experiments/<id>.csv`.
pub struct ExperimentTable {
    id: String,
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Start a table for experiment `id` (e.g. `"fig6_bfs"`).
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        ExperimentTable {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Print to stdout and write the CSV; returns the CSV path.
    pub fn finish(&self) -> PathBuf {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} — {} ==", self.id, self.title);
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            println!("  {}", line.join("  "));
        };
        print_row(&self.header);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            print_row(row);
        }

        let dir = out_dir();
        fs::create_dir_all(&dir).expect("create experiments dir");
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.header.join(",")).unwrap();
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).unwrap();
        }
        println!("  -> {}", path.display());
        path
    }
}

/// Where experiment CSVs land.
pub fn out_dir() -> PathBuf {
    // target/ of the workspace regardless of cwd quirk under cargo bench.
    let mut dir = std::env::current_dir().expect("cwd");
    while !dir.join("Cargo.toml").exists() || !dir.join("crates").exists() {
        if !dir.pop() {
            return PathBuf::from("target/experiments");
        }
    }
    dir.join("target").join("experiments")
}

/// Format a simulated duration in seconds with 4 significant digits.
pub fn secs(d: gts_sim::SimDuration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Format an outcome: seconds or `O.O.M.` — the figures' failure cells.
pub fn secs_or_oom<E>(r: &Result<gts_sim::SimDuration, E>) -> String {
    match r {
        Ok(d) => secs(*d),
        Err(_) => "O.O.M.".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_sim::SimDuration;

    #[test]
    fn table_roundtrip_writes_csv() {
        let mut t = ExperimentTable::new("test_table", "unit test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.finish();
        let body = fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = ExperimentTable::new("x", "y", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(SimDuration::from_millis(1500)), "1.5000");
        let ok: Result<SimDuration, ()> = Ok(SimDuration::from_secs(2));
        let err: Result<SimDuration, ()> = Err(());
        assert_eq!(secs_or_oom(&ok), "2.0000");
        assert_eq!(secs_or_oom(&err), "O.O.M.");
    }
}
