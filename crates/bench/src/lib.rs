#![warn(missing_docs)]

//! # gts-bench — the experiment harness
//!
//! One `harness = false` bench target per table and figure of the paper's
//! evaluation (Sec. 7 plus Appendices C–E), each printing the paper's rows
//! next to this reproduction's measurements and writing a CSV under
//! `target/experiments/`. Run everything with
//! `cargo bench -p gts-bench`, or one experiment with e.g.
//! `cargo bench -p gts-bench --bench fig6_distributed`.
//!
//! All experiments run at **1/1024 scale** (see [`scale`]): paper RMAT*k*
//! maps to our RMAT*(k−10)* and every capacity (device memory, host
//! memory, cluster node memory) divides by 1024, so the paper's regime
//! boundaries — fits-in-GPU / fits-in-host / must-stream-from-SSD, and the
//! O.O.M. cells — fall in the same places. Bandwidths are *not* scaled
//! (they are rates, not capacities); absolute times therefore shrink by
//! ~1024× and the comparisons are about ratios and crossovers, exactly as
//! scoped in `DESIGN.md` §1 and recorded per-experiment in
//! `EXPERIMENTS.md`.

//! Alongside the simulated-evaluation benches, [`bench`] is the
//! **wall-clock** harness: `BenchSpec` → `BenchReport` with a
//! warmup/repeat/median protocol and machine-readable JSON artifacts
//! (`BENCH_*.json` at the repo root), driven by the `gts-bench` binary
//! (`cargo run -p gts-bench --release -- --suite all --json-out .`).

pub mod bench;
pub mod datasets;
pub mod scale;
pub mod table;
