//! Table 1 — ratios of transfer time to kernel execution time for BFS and
//! PageRank on the three real-graph look-alikes.
//!
//! Paper values (transfer : kernel): BFS — Twitter 1:3, UK2007 1:1,
//! YahooWeb 2:1; PageRank — Twitter 1:20, UK2007 1:6, YahooWeb 1:4. The
//! shape claims to reproduce: PageRank kernels dominate transfers far more
//! than BFS kernels do, and the dense Twitter-class graph has the largest
//! kernel share for both algorithms.

use gts_bench::datasets::{Prepared, BFS_SOURCE, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::ExperimentTable;
use gts_core::programs::{Bfs, PageRank};
use gts_graph::Dataset;

fn ratio_str(transfer_over_kernel: f64) -> String {
    if transfer_over_kernel <= 0.0 {
        return "n/a".to_string();
    }
    if transfer_over_kernel >= 1.0 {
        format!("{:.1}:1", transfer_over_kernel)
    } else {
        format!("1:{:.1}", 1.0 / transfer_over_kernel)
    }
}

fn main() {
    let paper_bfs = ["1:3", "1:1", "2:1"];
    let paper_pr = ["1:20", "1:6", "1:4"];
    let datasets = [
        Dataset::TwitterLike,
        Dataset::Uk2007Like,
        Dataset::YahooWebLike,
    ];

    let mut table = ExperimentTable::new(
        "table1",
        "transfer:kernel time ratios (paper Table 1)",
        &["algorithm", "dataset", "paper", "measured"],
    );
    let mut measured = Vec::new();
    for (i, d) in datasets.iter().enumerate() {
        let prep = Prepared::build(*d);
        // No cache, 1 GPU: measure the raw stream/execute balance.
        let mut cfg = scale::gts_config();
        cfg.cache_limit_bytes = Some(0);

        let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
        let r = prep.run_gts(cfg.clone(), &mut bfs).expect("bfs run");
        let bfs_ratio = r.transfer_to_kernel_ratio();
        table.row(vec![
            "BFS".into(),
            d.name(),
            paper_bfs[i].into(),
            ratio_str(bfs_ratio),
        ]);

        let mut pr = PageRank::new(prep.store.num_vertices(), PR_ITERATIONS);
        let r = prep.run_gts(cfg, &mut pr).expect("pagerank run");
        let pr_ratio = r.transfer_to_kernel_ratio();
        table.row(vec![
            "PageRank".into(),
            d.name(),
            paper_pr[i].into(),
            ratio_str(pr_ratio),
        ]);
        measured.push((d.name(), bfs_ratio, pr_ratio));
    }
    table.finish();

    // Shape checks (printed, not asserted, so the bench always reports).
    for (name, bfs, pr) in &measured {
        let ok = pr < bfs;
        println!(
            "  shape[{}]: PageRank kernels dominate more than BFS ({}) {}",
            name,
            if ok { "yes" } else { "NO" },
            if ok { "✓" } else { "✗" }
        );
    }
}
