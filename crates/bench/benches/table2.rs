//! Table 2 — the three possible configurations of a 6-byte physical ID
//! (Sec. 6.1): addressable pages, slots, and maximum page size per (p,q).
//!
//! This table is analytic; the reproduction computes it from
//! [`gts_storage::PhysicalIdConfig`] and checks it cell-by-cell against the
//! paper.

use gts_bench::table::ExperimentTable;
use gts_storage::PhysicalIdConfig;

fn human(bytes: u64) -> String {
    const G: u64 = 1 << 30;
    const M: u64 = 1 << 20;
    if bytes >= G {
        format!("{} GB", bytes / G)
    } else if bytes >= M {
        format!("{:.2} MB", bytes as f64 / M as f64)
    } else {
        format!("{} KB", bytes >> 10)
    }
}

fn count(x: u64) -> String {
    if x >= 1 << 30 {
        format!("{} B", x >> 30)
    } else if x >= 1 << 20 {
        format!("{} M", x >> 20)
    } else {
        format!("{} K", x >> 10)
    }
}

fn main() {
    // Paper's rows: (p, q, max page id, max slots, max page size).
    let paper = [
        (2u8, 4u8, "64 K", "4 B", "80 GB"),
        (3, 3, "16 M", "16 M", "320 MB"),
        (4, 2, "4 B", "64 K", "1.25 MB"),
    ];
    let mut t = ExperimentTable::new(
        "table2",
        "6-byte physical ID configurations (paper Table 2)",
        &[
            "p",
            "q",
            "paper max pid",
            "ours",
            "paper max slot",
            "ours",
            "paper max page",
            "ours",
        ],
    );
    for (p, q, pid, slot, size) in paper {
        let c = PhysicalIdConfig::new(p, q);
        t.row(vec![
            p.to_string(),
            q.to_string(),
            pid.to_string(),
            count(c.max_page_id()),
            slot.to_string(),
            count(c.max_slot()),
            size.to_string(),
            human(c.max_page_size()),
        ]);
    }
    t.finish();
    println!(
        "  chosen configuration: {} (balanced p/q, Sec. 6.1)",
        PhysicalIdConfig::TRILLION
    );
}
