//! Section 8's related-work comparison, as an experiment: the three
//! out-of-core streaming designs side by side.
//!
//! * **X-Stream** — fine-grained sequential (stream every edge, every
//!   iteration; mixed read/write for the update shuffle);
//! * **GraphChi** — shard loading with no I/O/compute overlap;
//! * **GTS** — coarse-grained (page-level) sequential *and* random access:
//!   read-only streaming, only the relevant pages for traversals.
//!
//! Paper claims to reproduce: for PageRank the streamers are within sight
//! of each other (every design scans everything), with GraphChi the
//! slowest; for BFS on a high-diameter graph X-Stream "did not finish in a
//! reasonable amount of time" — a full edge scan per level — while GTS
//! streams only frontier pages.

use gts_baselines::graphchi::{GraphChi, GraphChiConfig};
use gts_baselines::xstream::{XStream, XStreamConfig};
use gts_bench::datasets::{Prepared, BFS_SOURCE, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::engine::{GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, PageRank};
use gts_graph::Dataset;

fn main() {
    let datasets = [
        Dataset::TwitterLike,
        Dataset::YahooWebLike, // high diameter — the Sec. 8 stress case
        Dataset::Rmat(18),
    ];
    // All three engines stream from the same class of storage: 1 SSD.
    let gts_cfg = GtsConfig {
        storage: StorageLocation::Ssds(1),
        mmbuf_percent: 0,
        cache_limit_bytes: Some(0),
        ..scale::gts_config()
    };
    let xstream = XStream::new(XStreamConfig::default());
    let graphchi = GraphChi::new(GraphChiConfig::default());

    for (alg, pagerank) in [("bfs", false), ("pagerank", true)] {
        let mut t = ExperimentTable::new(
            &format!("sec8_{alg}"),
            &format!("{alg}: out-of-core streaming designs, seconds (paper Sec. 8)"),
            &["dataset", "sweeps", "X-Stream", "GraphChi", "GTS"],
        );
        for d in datasets {
            let prep = Prepared::build(d);
            let (sweeps, xs, chi) = if pagerank {
                let xs = xstream.run_pagerank(&prep.csr, PR_ITERATIONS).unwrap().1;
                let chi = graphchi.run_pagerank(&prep.csr, PR_ITERATIONS).unwrap().1;
                (xs.sweeps, xs.elapsed, chi.elapsed)
            } else {
                let xs = xstream.run_bfs(&prep.csr, BFS_SOURCE as u32).unwrap().1;
                let chi = graphchi.run_bfs(&prep.csr, BFS_SOURCE as u32).unwrap().1;
                (xs.sweeps, xs.elapsed, chi.elapsed)
            };
            let gts = if pagerank {
                let mut pr = PageRank::new(prep.store.num_vertices(), PR_ITERATIONS);
                prep.run_gts(gts_cfg.clone(), &mut pr).unwrap().elapsed
            } else {
                let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
                prep.run_gts(gts_cfg.clone(), &mut bfs).unwrap().elapsed
            };
            t.row(vec![
                d.name(),
                sweeps.to_string(),
                secs(xs),
                secs(chi),
                secs(gts),
            ]);
        }
        t.finish();
    }
    println!(
        "\n  paper shape: GraphChi < X-Stream in efficiency; on the high-diameter \
         graph X-Stream's per-level full scans explode while GTS streams only \
         frontier pages."
    );
}
