//! Figure 6 — GTS vs. the distributed engines (GraphX, Giraph,
//! PowerGraph, Naiad) for BFS and PageRank across the dataset sweep.
//!
//! Paper shapes to reproduce:
//! * GTS beats every distributed engine on every dataset, by 1–3 orders
//!   of magnitude;
//! * Giraph is the slowest, PowerGraph the fastest/most scalable of the
//!   four, Naiad OOMs earliest;
//! * the JVM engines hit `O.O.M.` near the top of the sweep (paper:
//!   RMAT31/32 ↔ our RMAT21/22) while only GTS finishes everything;
//! * GTS's own time jumps between RMAT20 and RMAT21 (our mapping of the
//!   paper's RMAT30→31 step), where it moves from in-memory Strategy-P to
//!   SSD-resident Strategy-S.

use gts_baselines::bsp::BspEngine;
use gts_baselines::cluster::FrameworkProfile;
use gts_baselines::gas::GasEngine;
use gts_baselines::propagation::{self, place};
use gts_bench::datasets::{Prepared, BFS_SOURCE, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::engine::{GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, PageRank};
use gts_core::Strategy;
use gts_graph::Dataset;

/// GTS configuration per dataset: the paper keeps graphs up to RMAT30 in
/// main memory under Strategy-P and moves RMAT31/32 to SSDs under
/// Strategy-S (Sec. 7.2); our mapping shifts that boundary to RMAT20→21.
fn gts_config_for(d: Dataset) -> GtsConfig {
    let big = matches!(d, Dataset::Rmat(s) if s >= 21);
    GtsConfig {
        num_gpus: 2,
        strategy: if big {
            Strategy::Scalability
        } else {
            Strategy::Performance
        },
        storage: if big {
            StorageLocation::Ssds(2)
        } else {
            StorageLocation::InMemory
        },
        mmbuf_percent: 20,
        ..scale::gts_config()
    }
}

fn main() {
    let profiles = [
        scale::framework(FrameworkProfile::graphx()),
        scale::framework(FrameworkProfile::giraph()),
        scale::framework(FrameworkProfile::naiad()),
    ];
    let cluster = scale::cluster();
    let mut bfs_table = ExperimentTable::new(
        "fig6_bfs",
        "BFS: GTS vs distributed engines, seconds (paper Fig. 6a)",
        &["dataset", "GraphX", "Giraph", "Naiad", "PowerGraph", "GTS"],
    );
    let mut pr_table = ExperimentTable::new(
        "fig6_pagerank",
        "PageRank x10: GTS vs distributed engines, seconds (paper Fig. 6b)",
        &["dataset", "GraphX", "Giraph", "Naiad", "PowerGraph", "GTS"],
    );

    for d in Dataset::comparison_sweep() {
        let prep = Prepared::build(d);
        let nodes = cluster.nodes;

        // One functional trace per algorithm serves all three BSP profiles.
        let bfs_trace = propagation::min_propagation(
            &prep.csr,
            Some(BFS_SOURCE as u32),
            |_, _, x| x + 1.0,
            place::hash(nodes),
            nodes,
        );
        let pr_trace = propagation::pagerank_propagation(
            &prep.csr,
            0.85,
            PR_ITERATIONS,
            place::hash(nodes),
            nodes,
        );

        let mut bfs_row = vec![d.name()];
        let mut pr_row = vec![d.name()];
        for p in &profiles {
            let engine = BspEngine::new(cluster.clone(), p.clone());
            bfs_row.push(cell(engine.account(&prep.csr, &bfs_trace, "BFS")));
            pr_row.push(cell(engine.account(&prep.csr, &pr_trace, "PageRank")));
        }
        // Reorder into the figure's column order (GraphX, Giraph, Naiad,
        // PowerGraph) — PowerGraph comes from the GAS engine.
        let mut gas = GasEngine::new(cluster.clone());
        gas.profile = scale::framework(gas.profile);
        bfs_row.push(cell(gas.run_bfs(&prep.csr, BFS_SOURCE as u32).map(|r| r.1)));
        pr_row.push(cell(
            gas.run_pagerank(&prep.csr, PR_ITERATIONS).map(|r| r.1),
        ));

        // GTS itself.
        let cfg = gts_config_for(d);
        let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
        bfs_row.push(match prep.run_gts(cfg.clone(), &mut bfs) {
            Ok(r) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        let mut pr = PageRank::new(prep.store.num_vertices(), PR_ITERATIONS);
        pr_row.push(match prep.run_gts(cfg, &mut pr) {
            Ok(r) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });

        bfs_table.row(bfs_row);
        pr_table.row(pr_row);
    }
    bfs_table.finish();
    pr_table.finish();
    println!(
        "\n  paper Fig. 6 anchors (seconds): BFS twitter — GraphX 57, Giraph 88, \
         PowerGraph 17, GTS 0.9; PageRank twitter — GraphX 210, Giraph 1654, \
         PowerGraph 84, GTS 7.2; RMAT32 — all distributed O.O.M., GTS finishes."
    );
}

fn cell(r: Result<gts_baselines::RunReport, gts_baselines::BaselineError>) -> String {
    match r {
        Ok(run) => secs(run.elapsed),
        Err(_) => "O.O.M.".into(),
    }
}
