//! Section 5 / Section 7.5 — the analytic cost models versus the
//! simulator's measured elapsed times.
//!
//! The paper sanity-checks its numbers the same way: ten PageRank
//! iterations over RMAT30 "take about 153 seconds, which is approximately
//! equal to 114 × 10 ÷ 6 = 190 seconds" (model slightly above measurement
//! because caching/buffering help). We reproduce that check: Eq. (1) and
//! Eq. (2) should land within ~2x of the measured times, with the model
//! on the pessimistic side once caching is enabled.

use gts_bench::datasets::{Prepared, BFS_SOURCE, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::cost::{self, CostParams, LevelVolume};
use gts_core::programs::{Bfs, PageRank};
use gts_graph::Dataset;
use gts_sim::SimDuration;

fn main() {
    let mut t = ExperimentTable::new(
        "cost_model",
        "Eq.(1)/Eq.(2) predictions vs measured elapsed (Sec. 5, Sec. 7.5)",
        &[
            "algorithm",
            "dataset",
            "model(s)",
            "measured(s)",
            "model/measured",
        ],
    );
    for d in [Dataset::Rmat(17), Dataset::Rmat(18), Dataset::Rmat(19)] {
        let prep = Prepared::build(d);
        let cfg = gts_core::engine::GtsConfig {
            cache_limit_bytes: Some(0),
            ..scale::gts_config()
        };
        let params = CostParams {
            wa_bytes: 0, // set per algorithm below
            c1: cfg.pcie.chunk_bw,
            c2: cfg.pcie.stream_bw,
            num_gpus: cfg.num_gpus as u64,
            t_call: cfg.gpu.launch_overhead,
            t_sync: SimDuration::from_micros(50),
        };
        let v = prep.store.num_vertices();
        let topo = prep.store.topology_bytes();
        let pages = prep.store.num_pages();

        // --- PageRank: Eq. (1) × iterations.
        let mut pr = PageRank::new(v, PR_ITERATIONS);
        let measured = prep.run_gts(cfg.clone(), &mut pr).expect("run").elapsed;
        let mut p = params.clone();
        p.wa_bytes = gts_core::attrs::AlgorithmKind::PageRank.wa_bytes(v);
        let ra = gts_core::attrs::AlgorithmKind::PageRank.ra_bytes(v);
        // Last-kernel time: one average page's compute-class kernel.
        let avg_edges = prep.store.num_edges() / pages.max(1);
        let last = SimDuration::from_secs_f64(
            (avg_edges as f64 * (cfg.gpu.compute_slot_ns * 1.5 + cfg.gpu.compute_atomic_ns)) / 1e9,
        );
        let model = cost::pagerank_like(&p, ra, topo, 0, pages, last) * PR_ITERATIONS as u64;
        t.row(vec![
            "PageRank".into(),
            d.name(),
            secs(model),
            secs(measured),
            format!("{:.2}", model.as_secs_f64() / measured.as_secs_f64()),
        ]);

        // --- BFS: Eq. (2) with per-level volumes taken directly from the
        // engine's per-sweep statistics.
        let mut bfs = Bfs::new(v, BFS_SOURCE);
        let report = prep.run_gts(cfg.clone(), &mut bfs).expect("run");
        let volumes: Vec<LevelVolume> = report
            .per_sweep
            .iter()
            .map(|s| LevelVolume {
                bytes: s.pages * prep.store.cfg().page_size as u64,
                pages: s.pages,
            })
            .collect();
        let mut p = params.clone();
        p.wa_bytes = gts_core::attrs::AlgorithmKind::Bfs.wa_bytes(v);
        let model = cost::bfs_like(&p, &volumes, 1.0, 0.0);
        t.row(vec![
            "BFS".into(),
            d.name(),
            secs(model),
            secs(report.elapsed),
            format!("{:.2}", model.as_secs_f64() / report.elapsed.as_secs_f64()),
        ]);
    }
    t.finish();
    println!(
        "\n  paper check (Sec. 7.5): model ≈ measured within tens of percent, model \
         above measurement when buffering helps."
    );
}
