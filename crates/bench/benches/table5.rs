//! Table 5 / Appendix C — TOTEM's best GPU%:CPU% partition ratios.
//!
//! The paper's Table 5 lists, per algorithm and dataset, the partition
//! ratio that gives TOTEM its best performance (found by tuning, one of
//! TOTEM's usability drawbacks GTS avoids). This bench reproduces the
//! search: it sweeps the ratio and reports the argmax, for one and two
//! GPUs (two GPUs are approximated as one device with doubled memory).
//!
//! Paper shape: the best GPU share shrinks as graphs grow (device memory
//! is fixed), and doubling GPU memory pushes it back up.

use gts_baselines::totem::Totem;
use gts_bench::datasets::Prepared;
use gts_bench::scale;
use gts_bench::table::ExperimentTable;
use gts_graph::Dataset;

fn main() {
    let candidates: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let paper = [
        // (dataset, paper 1-GPU BFS, 1-GPU PR, 2-GPU BFS, 2-GPU PR)
        (Dataset::TwitterLike, "50:50", "80:20", "75:25", "85:15"),
        (Dataset::Uk2007Like, "35:65", "30:70", "70:30", "60:40"),
        (Dataset::Rmat(17), "65:35", "60:40", "80:20", "80:20"),
        (Dataset::Rmat(18), "15:85", "60:40", "40:60", "80:20"),
        (Dataset::Rmat(19), "50:50", "15:85", "75:25", "30:70"),
    ];
    let mut t = ExperimentTable::new(
        "table5",
        "best TOTEM partition ratios GPU%:CPU% (paper Table 5)",
        &["dataset", "gpus", "alg", "paper", "measured", "elapsed(s)"],
    );
    for (d, p1b, p1p, p2b, p2p) in paper {
        let prep = Prepared::build(d);
        for (gpus, pb, pp) in [(1u64, p1b, p1p), (2, p2b, p2p)] {
            let mut cfg = scale::totem_config();
            cfg.gpu.device_memory *= gpus;
            let totem = Totem::new(cfg);
            for (alg, paper_ratio, pagerank) in [("BFS", pb, false), ("PageRank", pp, true)] {
                match totem.best_ratio(&prep.csr, &candidates, pagerank) {
                    Ok((frac, elapsed)) => {
                        // Report the ratio of edges actually placed on the
                        // GPU after capacity clamping.
                        let eff = Totem::new(totem.config().clone().with_gpu_fraction(frac))
                            .effective_gpu_fraction(&prep.csr)
                            .unwrap_or(frac);
                        let gpu_pct = (eff * 100.0).round() as u32;
                        t.row(vec![
                            d.name(),
                            gpus.to_string(),
                            alg.into(),
                            paper_ratio.into(),
                            format!("{gpu_pct}:{}", 100 - gpu_pct),
                            format!("{:.4}", elapsed.as_secs_f64()),
                        ]);
                    }
                    Err(e) => {
                        t.row(vec![
                            d.name(),
                            gpus.to_string(),
                            alg.into(),
                            paper_ratio.into(),
                            "O.O.M.".into(),
                            format!("({e})"),
                        ]);
                    }
                }
            }
        }
    }
    t.finish();
}
