//! Host-thread scaling of the real implementation: wall-clock time of the
//! same runs at `host_threads` ∈ {1, 2, 4, all}, which must change *only*
//! the wall-clock column — results and simulated time are asserted
//! identical here, mirroring the engine's own determinism tests.
//!
//! Self-timed like `micro.rs`: one warmup, best-of-N wall-clock.

use gts_baselines::propagation::{self, place};
use gts_core::engine::{Gts, GtsConfig};
use gts_core::programs::PageRank;
use gts_graph::generate::Rmat;
use gts_graph::Csr;
use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn best_of<T>(iters: u32, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut out = f(); // warmup
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        out = black_box(f());
        best = best.min(t0.elapsed());
    }
    (best, out)
}

fn main() {
    let all = gts_exec::default_host_threads();
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&all) {
        counts.push(all);
    }

    // Engine PageRank: the tentpole's headline path (shared kernels).
    let graph = Rmat::new(14).generate();
    let store = build_graph_store(
        &graph,
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 64 * 1024),
    )
    .unwrap();
    println!("engine PageRank (rmat14, 10 iters), best of 3:");
    let mut baseline: Option<(Duration, gts_sim::SimDuration)> = None;
    for &threads in &counts {
        let cfg = GtsConfig::builder().host_threads(threads).build().unwrap();
        let (wall, sim) = best_of(3, || {
            let mut pr = PageRank::new(store.num_vertices(), 10);
            Gts::new(cfg.clone()).run(&store, &mut pr).unwrap().elapsed
        });
        let speedup = match &baseline {
            None => {
                baseline = Some((wall, sim));
                1.0
            }
            Some((w1, s1)) => {
                assert_eq!(sim, *s1, "simulated time drifted with host_threads");
                w1.as_secs_f64() / wall.as_secs_f64()
            }
        };
        println!("  host_threads={threads:<3} {wall:>12.3?}  ({speedup:.2}x vs 1 thread)");
    }

    // CSR build + baseline propagation: the other parallelized layers.
    println!("CSR from_edge_list (rmat16), best of 3:");
    let edges = Rmat::new(16).generate();
    for &threads in &counts {
        let (wall, _) = best_of(3, || Csr::from_edge_list_threads(&edges, threads));
        println!("  host_threads={threads:<3} {wall:>12.3?}");
    }

    println!("min_propagation BFS (rmat16), best of 3:");
    let g = Csr::from_edge_list(&edges);
    for &threads in &counts {
        let (wall, trace) = best_of(3, || {
            propagation::min_propagation_threads(
                &g,
                Some(0),
                |_, _, x| x + 1.0,
                place::single(),
                1,
                threads,
            )
        });
        println!(
            "  host_threads={threads:<3} {wall:>12.3?}  ({} sweeps)",
            trace.sweeps.len()
        );
    }
}
