//! Figure 14 (Appendix E) — micro-level parallel processing techniques
//! (vertex-centric, edge-centric VWC, hybrid) across graph density.
//!
//! Workload: RMAT18 with the edge factor swept over 4, 8, 16, 32
//! (the paper uses RMAT28 with densities 1:4..1:32). Paper shapes to
//! reproduce:
//! * the three techniques are close at density 1:4;
//! * edge-centric beats vertex-centric by a growing margin as density
//!   rises (warps stall on the skewed degree distribution);
//! * hybrid is never worse than edge-centric and improves on it modestly
//!   (the paper measured up to 6 % for BFS, 24 % for PageRank).

use gts_bench::datasets::{BFS_SOURCE, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::programs::{Bfs, GtsProgram, PageRank};
use gts_core::{Gts, GtsConfig};
use gts_gpu::MicroTechnique;
use gts_graph::generate::Rmat;
use gts_storage::build_graph_store;

fn main() {
    let densities = [4u32, 8, 16, 32];
    let techniques = [
        ("vertex-centric", MicroTechnique::VertexCentric),
        (
            "edge-centric",
            MicroTechnique::EdgeCentric { virtual_warp: 32 },
        ),
        ("hybrid", MicroTechnique::Hybrid { virtual_warp: 32 }),
    ];
    for (alg, pagerank) in [("bfs", false), ("pagerank", true)] {
        let mut t = ExperimentTable::new(
            &format!("fig14_{alg}"),
            &format!("{alg}: seconds per technique vs density (paper Fig. 14)"),
            &["density", "vertex-centric", "edge-centric", "hybrid"],
        );
        for density in densities {
            let graph = Rmat::new(18).with_edge_factor(density).generate();
            let store = build_graph_store(&graph, scale::page_format_small()).expect("store");
            let mut row = vec![format!("1:{density:02}")];
            let mut results = Vec::new();
            for (_, technique) in &techniques {
                let cfg = GtsConfig {
                    technique: *technique,
                    cache_limit_bytes: Some(0),
                    ..scale::gts_config()
                };
                let mut prog: Box<dyn GtsProgram> = if pagerank {
                    Box::new(PageRank::new(store.num_vertices(), PR_ITERATIONS))
                } else {
                    Box::new(Bfs::new(store.num_vertices(), BFS_SOURCE))
                };
                let r = Gts::new(cfg).run(&store, prog.as_mut()).expect("run");
                results.push(r.elapsed);
                row.push(secs(r.elapsed));
            }
            t.row(row);
            // Hybrid must never lose to edge-centric (it takes the min).
            assert!(
                results[2] <= results[1],
                "hybrid regressed at density {density}"
            );
        }
        t.finish();
    }
    println!(
        "\n  paper Fig. 14 anchors (seconds, RMAT28): BFS 1:32 — vertex 120, \
         edge 27, hybrid 27; PageRank 1:32 — vertex 158, edge 23, hybrid 23."
    );
}
