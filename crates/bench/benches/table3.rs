//! Table 3 — statistics of the graph datasets: vertices, edges, physical-ID
//! configuration, and the Small/Large page counts of the slotted-page
//! build.
//!
//! Paper shape to reproduce: page counts grow linearly with graph size,
//! the overwhelming majority of pages are Small Pages, and only the
//! skewed datasets (Twitter, RMAT29) produce noticeable Large Page counts.

use gts_bench::datasets::Prepared;
use gts_bench::scale;
use gts_bench::table::ExperimentTable;
use gts_graph::Dataset;

fn main() {
    let mut t = ExperimentTable::new(
        "table3",
        "dataset statistics under the slotted page format (paper Table 3)",
        &[
            "dataset",
            "paper-equiv",
            "#vertices",
            "#edges",
            "(p,q)",
            "#SP",
            "#LP",
        ],
    );
    for d in Dataset::comparison_sweep() {
        let prep = Prepared::build(d);
        let cfg = scale::page_format_for(d);
        let equiv = match d {
            Dataset::Rmat(s) => format!("RMAT{}", scale::paper_rmat(s)),
            Dataset::TwitterLike => "Twitter".to_string(),
            Dataset::Uk2007Like => "UK2007".to_string(),
            Dataset::YahooWebLike => "YahooWeb".to_string(),
        };
        t.row(vec![
            d.name(),
            equiv,
            prep.store.num_vertices().to_string(),
            prep.store.num_edges().to_string(),
            cfg.id.to_string(),
            prep.store.small_pids().len().to_string(),
            prep.store.large_pids().len().to_string(),
        ]);
        assert!(
            prep.store.small_pids().len() > prep.store.large_pids().len(),
            "paper Sec. 3.1: most topology pages are SPs"
        );
    }
    t.finish();
}
