//! Figure 9 — Strategy-P vs Strategy-S across storage types (in-memory,
//! 2 SSDs, 1 SSD, 2 HDDs) for BFS and PageRank on RMAT20 (the paper's
//! RMAT30 at our scale).
//!
//! Paper shapes to reproduce:
//! * both strategies perform similarly when I/O is the bottleneck
//!   (1 SSD, 2 HDDs);
//! * Strategy-P is somewhat faster in-memory and with 2 SSDs;
//! * the storage hierarchy ordering holds: memory < 2 SSD < 1 SSD ≪ 2 HDD
//!   (the HDD column is an order of magnitude worse).

use gts_bench::datasets::{Prepared, BFS_SOURCE, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::engine::{GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, PageRank};
use gts_core::Strategy;
use gts_graph::Dataset;

fn main() {
    let prep = Prepared::build(Dataset::Rmat(20));
    let storages = [
        ("in-memory", StorageLocation::InMemory),
        ("2 SSDs", StorageLocation::Ssds(2)),
        ("1 SSD", StorageLocation::Ssds(1)),
        ("2 HDDs", StorageLocation::Hdds(2)),
    ];
    for (alg_name, pagerank, paper_p, paper_s) in [
        (
            "BFS",
            false,
            [29.6, 82.7, 157.3, 1255.2],
            [63.5, 99.2, 158.1, 1253.4],
        ),
        (
            "PageRank",
            true,
            [153.4, 195.9, 365.1, 2843.4],
            [154.8, 223.1, 356.7, 2834.3],
        ),
    ] {
        let mut t = ExperimentTable::new(
            &format!("fig9_{}", alg_name.to_lowercase()),
            &format!(
                "{alg_name} on RMAT20 (paper RMAT30), Strategy-P vs Strategy-S (paper Fig. 9)"
            ),
            &[
                "storage",
                "paper P(s)",
                "ours P(s)",
                "paper S(s)",
                "ours S(s)",
            ],
        );
        for (i, (name, storage)) in storages.iter().enumerate() {
            let mut cells = vec![name.to_string()];
            for (strategy, paper) in [
                (Strategy::Performance, paper_p[i]),
                (Strategy::Scalability, paper_s[i]),
            ] {
                let cfg = GtsConfig {
                    num_gpus: 2,
                    strategy,
                    storage: *storage,
                    mmbuf_percent: 20,
                    // The paper streams the graph fresh from storage; give
                    // the cache only the leftover memory (default).
                    ..scale::gts_config()
                };
                let elapsed = if pagerank {
                    let mut pr = PageRank::new(prep.store.num_vertices(), PR_ITERATIONS);
                    prep.run_gts(cfg, &mut pr).expect("fig9 run").elapsed
                } else {
                    let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
                    prep.run_gts(cfg, &mut bfs).expect("fig9 run").elapsed
                };
                cells.push(format!("{paper}"));
                cells.push(secs(elapsed));
            }
            // Reorder: paper P, ours P, paper S, ours S.
            t.row(vec![
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                cells[3].clone(),
                cells[4].clone(),
            ]);
        }
        t.finish();
    }
}
