//! Table 4 — size of the WA (device-resident read/write attribute) data
//! versus topology data in the slotted page format.
//!
//! Paper shape: WA is 1.7–10 % of topology for every algorithm, which is
//! the fact that lets GTS keep WA resident while streaming topology.

use gts_bench::datasets::Prepared;
use gts_bench::table::ExperimentTable;
use gts_core::attrs::AlgorithmKind;
use gts_graph::Dataset;

fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}

fn main() {
    let algs = [
        AlgorithmKind::Bfs,
        AlgorithmKind::PageRank,
        AlgorithmKind::Sssp,
        AlgorithmKind::ConnectedComponents,
    ];
    let mut t = ExperimentTable::new(
        "table4",
        "WA size vs topology size, MiB at 1/1024 scale (paper Table 4)",
        &[
            "dataset",
            "topology",
            "BFS",
            "PageRank",
            "SSSP",
            "CC",
            "max WA/topo",
        ],
    );
    for d in [
        Dataset::Rmat(18),
        Dataset::Rmat(19),
        Dataset::Rmat(20),
        Dataset::Rmat(21),
        Dataset::Rmat(22),
    ] {
        let prep = Prepared::build(d);
        let topo = prep.store.topology_bytes();
        let v = prep.store.num_vertices();
        let mut row = vec![d.name(), mb(topo)];
        let mut worst: f64 = 0.0;
        for a in algs {
            let wa = a.wa_bytes(v);
            worst = worst.max(wa as f64 / topo as f64);
            row.push(mb(wa));
        }
        row.push(format!("{:.1}%", worst * 100.0));
        t.row(row);
        assert!(
            worst < 0.15,
            "WA must stay a small fraction of topology (paper: 1.7-10%)"
        );
    }
    t.finish();
}
