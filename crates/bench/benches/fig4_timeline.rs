//! Figures 3 & 4 — the multi-stream copy/kernel timelines.
//!
//! Fig. 3 is the idealised schedule; Fig. 4 shows profiler timelines for
//! BFS and PageRank with 16 streams: short copy bars with sparse kernels
//! for BFS, a dense wall of kernel bars for PageRank. This bench renders
//! the simulator's recorded timelines the same way (▒ = copy, █ = kernel).

use gts_bench::datasets::{Prepared, BFS_SOURCE};
use gts_bench::scale;
use gts_core::programs::{Bfs, PageRank};
use gts_graph::Dataset;
use gts_sim::timeline::SpanKind;

fn main() {
    let prep = Prepared::build(Dataset::Rmat(16));
    for pagerank in [false, true] {
        let mut cfg = scale::gts_config();
        cfg.record_timeline = true;
        cfg.cache_limit_bytes = Some(0);
        cfg.num_streams = 16;
        let (name, report) = if pagerank {
            let mut pr = PageRank::new(prep.store.num_vertices(), 2);
            ("PageRank", prep.run_gts(cfg, &mut pr).expect("run"))
        } else {
            let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
            ("BFS", prep.run_gts(cfg, &mut bfs).expect("run"))
        };
        let tl = report.timeline.expect("timeline enabled");
        println!("\n== fig4 — streaming timeline for {name} (16 streams, RMAT16) ==");
        println!("{}", tl.render_ascii(100));
        let copies = tl
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Copy)
            .count();
        let kernels = tl
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Kernel)
            .count();
        let busy = tl.busy_per_lane();
        let kernel_busy: f64 = tl
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Kernel)
            .map(|s| (s.end - s.start).as_secs_f64())
            .sum();
        let copy_busy: f64 = tl
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Copy)
            .map(|s| (s.end - s.start).as_secs_f64())
            .sum();
        println!(
            "  {copies} copies, {kernels} kernels across {} lanes; kernel:copy busy = {:.2}",
            busy.len(),
            kernel_busy / copy_busy.max(1e-12),
        );
        println!(
            "  paper shape: the PageRank timeline is denser with kernel work than BFS's"
        );
    }
}
