//! Figures 3 & 4 — the multi-stream copy/kernel timelines.
//!
//! Fig. 3 is the idealised schedule; Fig. 4 shows profiler timelines for
//! BFS and PageRank with 16 streams: short copy bars with sparse kernels
//! for BFS, a dense wall of kernel bars for PageRank. This bench records a
//! run with spans enabled and renders the telemetry the same way
//! (▒ = copy, █ = kernel).

use gts_bench::datasets::{Prepared, BFS_SOURCE};
use gts_bench::scale;
use gts_core::programs::{Bfs, PageRank};
use gts_graph::Dataset;
use gts_telemetry::SpanCat;

fn main() {
    let prep = Prepared::build(Dataset::Rmat(16));
    for pagerank in [false, true] {
        let mut cfg = scale::gts_config();
        cfg.cache_limit_bytes = Some(0);
        cfg.num_streams = 16;
        let (name, tel) = if pagerank {
            let mut pr = PageRank::new(prep.store.num_vertices(), 2);
            let (_, tel) = prep.run_gts_traced(cfg, &mut pr).expect("run");
            ("PageRank", tel)
        } else {
            let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
            let (_, tel) = prep.run_gts_traced(cfg, &mut bfs).expect("run");
            ("BFS", tel)
        };
        println!("\n== fig4 — streaming timeline for {name} (16 streams, RMAT16) ==");
        println!("{}", tel.render_ascii(100));
        let spans = tel.spans();
        let copies = spans.iter().filter(|s| s.cat == SpanCat::Copy).count();
        let kernels = spans.iter().filter(|s| s.cat == SpanCat::Kernel).count();
        let busy = tel.busy_per_track();
        let kernel_busy: f64 = spans
            .iter()
            .filter(|s| s.cat == SpanCat::Kernel)
            .map(|s| (s.end - s.start).as_secs_f64())
            .sum();
        let copy_busy: f64 = spans
            .iter()
            .filter(|s| s.cat == SpanCat::Copy)
            .map(|s| (s.end - s.start).as_secs_f64())
            .sum();
        println!(
            "  {copies} copies, {kernels} kernels across {} tracks; kernel:copy busy = {:.2}",
            busy.len(),
            kernel_busy / copy_busy.max(1e-12),
        );
        println!("  paper shape: the PageRank timeline is denser with kernel work than BFS's");
    }
}
