//! Figure 11 — effectiveness of the GPU-side topology page cache for BFS:
//! elapsed time (11a) and cache hit rate (11b) while sweeping the cache
//! size, for RMAT16..19 (the paper's RMAT26..29).
//!
//! Paper shapes to reproduce: hit rates grow roughly linearly with cache
//! size and shrink as the graph grows; elapsed time falls as the hit rate
//! rises; the largest cache point is missing for the biggest graph (its
//! WABuf leaves no room — our device-memory accounting reproduces that as
//! an allocation failure).

use gts_bench::datasets::{Prepared, BFS_SOURCE};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::engine::CachePolicyKind;
use gts_core::programs::Bfs;
use gts_graph::Dataset;

fn main() {
    // Paper sweeps 32 MB..5120 MB; ours scale by 1/1024 → 32 KiB..5 MiB.
    let sizes_kib: [u64; 6] = [32, 1024, 2048, 3072, 4096, 5120];
    let datasets = [
        Dataset::Rmat(16),
        Dataset::Rmat(17),
        Dataset::Rmat(18),
        Dataset::Rmat(19),
    ];
    // The paper's naive hit-rate model B/(S+L) (Sec. 3.3) and its
    // near-linear Fig. 11b curves correspond to *random* replacement; GTS's
    // level-synchronous page order is cyclic, for which LRU exhibits the
    // classic cliff (0 % until the working set fits). We run both: Random
    // as the paper-shape reproduction, LRU as the engine default — the
    // difference itself is a finding (see EXPERIMENTS.md and the
    // `ablation_cache_policy` bench).
    for (policy_name, policy) in [
        ("random", CachePolicyKind::Random),
        ("lru", CachePolicyKind::Lru),
    ] {
        let mut time_t = ExperimentTable::new(
            &format!("fig11_time_{policy_name}"),
            &format!("BFS elapsed seconds vs cache size KiB, {policy_name} (paper Fig. 11a)"),
            &["dataset", "32", "1024", "2048", "3072", "4096", "5120"],
        );
        let mut hit_t = ExperimentTable::new(
            &format!("fig11_hitrate_{policy_name}"),
            &format!("BFS cache hit rate % vs cache size KiB, {policy_name} (paper Fig. 11b)"),
            &["dataset", "32", "1024", "2048", "3072", "4096", "5120"],
        );
        for d in datasets {
            let prep = Prepared::build(d);
            let mut times = vec![d.name()];
            let mut hits = vec![d.name()];
            for &kib in &sizes_kib {
                let cfg = gts_core::engine::GtsConfig {
                    cache_limit_bytes: Some(kib * 1024),
                    cache_policy: policy,
                    ..scale::gts_config()
                };
                let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
                match prep.run_gts(cfg, &mut bfs) {
                    Ok(r) => {
                        times.push(secs(r.elapsed));
                        hits.push(format!("{:.1}", r.cache_hit_rate * 100.0));
                    }
                    Err(_) => {
                        // Paper: "for RMAT29, there is no result at the
                        // cache size 5,120 MB due to a large size of WABuf".
                        times.push("-".into());
                        hits.push("-".into());
                    }
                }
            }
            time_t.row(times);
            hit_t.row(hits);
        }
        time_t.finish();
        hit_t.finish();
    }
    println!(
        "\n  paper shape: hit rate rises ~linearly with cache size and falls with \
         graph size; elapsed time tracks the hit rate downward. Random replacement \
         reproduces it; LRU (the engine default) cliffs under cyclic page order."
    );
}
