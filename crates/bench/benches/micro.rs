//! Micro-benchmarks of the hot paths: slotted-page build and decode, RVT
//! translation, cache access, RMAT generation, and a full engine run —
//! these measure *wall-clock* performance of the implementation itself
//! (everything else in this crate reports simulated time).
//!
//! Self-timed (no external harness): each workload runs for a warmup
//! round and then a fixed number of iterations, reporting the best time —
//! the least noisy statistic on a shared machine.

use gts_core::engine::{Gts, GtsConfig};
use gts_core::programs::{Bfs, PageRank};
use gts_graph::generate::Rmat;
use gts_graph::Csr;
use gts_storage::cache::{CachePolicy, LruCache};
use gts_storage::{build_graph_store, PageFormatConfig, PageKind, PhysicalIdConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn fmt() -> PageFormatConfig {
    PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 64 * 1024)
}

/// Run `f` for `iters` timed iterations (after one warmup) and report the
/// best wall-clock time, optionally as a throughput over `elements`.
fn bench<T>(name: &str, iters: u32, elements: u64, mut f: impl FnMut() -> T) {
    black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed());
    }
    let rate = if elements > 0 && !best.is_zero() {
        format!(
            "  ({:.1} Melem/s)",
            elements as f64 / best.as_secs_f64() / 1e6
        )
    } else {
        String::new()
    };
    println!("{name:<40} {best:>12.3?}{rate}");
}

fn bench_store_build() {
    for scale in [12u32, 14] {
        let graph = Rmat::new(scale).generate();
        let edges = graph.num_edges() as u64;
        bench(&format!("store_build/rmat{scale}"), 5, edges, || {
            build_graph_store(black_box(&graph), fmt()).unwrap()
        });
    }
}

fn bench_page_scan() {
    let graph = Rmat::new(14).generate();
    let store = build_graph_store(&graph, fmt()).unwrap();
    bench("page_scan/decode_all_pages", 10, store.num_edges(), || {
        let mut sum = 0u64;
        for pid in 0..store.num_pages() {
            let v = store.view(pid);
            match v.kind() {
                PageKind::Small => {
                    for (vid, adj) in v.sp_vertices() {
                        sum += vid;
                        for rid in adj {
                            sum += store.rvt().translate(rid);
                        }
                    }
                }
                PageKind::Large => {
                    for i in 0..v.count() {
                        sum += store.rvt().translate(v.lp_adj(i));
                    }
                }
            }
        }
        sum
    });
}

fn bench_cache() {
    bench("lru_cache/access_zipf_like", 20, 10_000, || {
        let mut cache = LruCache::new(256);
        let mut hits = 0u64;
        for i in 0..10_000u64 {
            // Skewed reference stream: low pids are hot.
            let pid = (i * i) % 1024;
            if cache.access(black_box(pid)) {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_rmat() {
    let graph = Rmat::new(14);
    bench("rmat_generate/scale14", 5, (1u64 << 14) * 16, || {
        graph.generate()
    });
}

fn bench_engine() {
    let graph = Rmat::new(13).generate();
    let store = build_graph_store(&graph, fmt()).unwrap();
    let csr = Csr::from_edge_list(&graph);
    let edges = store.num_edges();
    bench("engine_wallclock/gts_bfs_rmat13", 5, edges, || {
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        Gts::new(GtsConfig::default())
            .run(black_box(&store), &mut bfs)
            .unwrap()
    });
    bench("engine_wallclock/gts_pagerank3_rmat13", 5, edges, || {
        let mut pr = PageRank::new(store.num_vertices(), 3);
        Gts::new(GtsConfig::default())
            .run(black_box(&store), &mut pr)
            .unwrap()
    });
    bench("engine_wallclock/reference_bfs_rmat13", 5, edges, || {
        gts_graph::reference::bfs(&csr, 0)
    });
}

fn bench_persistence() {
    let graph = Rmat::new(13).generate();
    let store = build_graph_store(&graph, fmt()).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("gts-bench-persist-{}", std::process::id()));
    bench("persistence/save_store", 5, store.topology_bytes(), || {
        gts_storage::save_store(black_box(&store), &path).unwrap()
    });
    gts_storage::save_store(&store, &path).unwrap();
    bench(
        "persistence/load_store_with_validation",
        5,
        store.topology_bytes(),
        || gts_storage::load_store(&path).unwrap(),
    );
    std::fs::remove_file(&path).ok();
}

fn bench_queries() {
    use gts_core::queries::QueryEngine;
    let graph = Rmat::new(13).generate();
    let store = build_graph_store(&graph, fmt()).unwrap();
    bench("queries/neighbors_cached", 10, 0, || {
        let mut q = QueryEngine::new(&store, 64);
        let mut total = 0usize;
        for v in (0..store.num_vertices()).step_by(97) {
            total += q.neighbors(black_box(v)).len();
        }
        total
    });
    bench("queries/egonet_hub", 10, 0, || {
        let mut q = QueryEngine::new(&store, 64);
        q.egonet(black_box(1))
    });
}

fn main() {
    println!("== micro — wall-clock hot paths (best of N) ==");
    bench_store_build();
    bench_page_scan();
    bench_cache();
    bench_rmat();
    bench_engine();
    bench_persistence();
    bench_queries();
}
