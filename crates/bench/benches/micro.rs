//! Criterion micro-benchmarks of the hot paths: slotted-page build and
//! decode, RVT translation, cache access, RMAT generation, and a full
//! engine run — these measure *wall-clock* performance of the
//! implementation itself (everything else in this crate reports simulated
//! time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gts_core::engine::{Gts, GtsConfig};
use gts_core::programs::{Bfs, PageRank};
use gts_graph::generate::Rmat;
use gts_graph::Csr;
use gts_storage::cache::{CachePolicy, LruCache};
use gts_storage::{build_graph_store, PageFormatConfig, PageKind, PhysicalIdConfig};
use std::hint::black_box;

fn fmt() -> PageFormatConfig {
    PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 64 * 1024)
}

fn bench_store_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_build");
    for scale in [12u32, 14] {
        let graph = Rmat::new(scale).generate();
        g.throughput(Throughput::Elements(graph.num_edges() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &graph, |b, graph| {
            b.iter(|| build_graph_store(black_box(graph), fmt()).unwrap());
        });
    }
    g.finish();
}

fn bench_page_scan(c: &mut Criterion) {
    let graph = Rmat::new(14).generate();
    let store = build_graph_store(&graph, fmt()).unwrap();
    let mut g = c.benchmark_group("page_scan");
    g.throughput(Throughput::Elements(store.num_edges()));
    g.bench_function("decode_all_pages", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for pid in 0..store.num_pages() {
                let v = store.view(pid);
                match v.kind() {
                    PageKind::Small => {
                        for (vid, adj) in v.sp_vertices() {
                            sum += vid;
                            for rid in adj {
                                sum += store.rvt().translate(rid);
                            }
                        }
                    }
                    PageKind::Large => {
                        for i in 0..v.count() {
                            sum += store.rvt().translate(v.lp_adj(i));
                        }
                    }
                }
            }
            black_box(sum)
        });
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("access_zipf_like", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(256);
            let mut hits = 0u64;
            for i in 0..10_000u64 {
                // Skewed reference stream: low pids are hot.
                let pid = (i * i) % 1024;
                if cache.access(black_box(pid)) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    g.finish();
}

fn bench_rmat(c: &mut Criterion) {
    let mut g = c.benchmark_group("rmat_generate");
    let graph = Rmat::new(14);
    g.throughput(Throughput::Elements((1u64 << 14) * 16));
    g.bench_function("scale14", |b| b.iter(|| black_box(graph.generate())));
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let graph = Rmat::new(13).generate();
    let store = build_graph_store(&graph, fmt()).unwrap();
    let csr = Csr::from_edge_list(&graph);
    let mut g = c.benchmark_group("engine_wallclock");
    g.throughput(Throughput::Elements(store.num_edges()));
    g.bench_function("gts_bfs_rmat13", |b| {
        b.iter(|| {
            let mut bfs = Bfs::new(store.num_vertices(), 0);
            Gts::new(GtsConfig::default())
                .run(black_box(&store), &mut bfs)
                .unwrap()
        });
    });
    g.bench_function("gts_pagerank3_rmat13", |b| {
        b.iter(|| {
            let mut pr = PageRank::new(store.num_vertices(), 3);
            Gts::new(GtsConfig::default())
                .run(black_box(&store), &mut pr)
                .unwrap()
        });
    });
    g.bench_function("reference_bfs_rmat13", |b| {
        b.iter(|| black_box(gts_graph::reference::bfs(&csr, 0)));
    });
    g.finish();
}

fn bench_persistence(c: &mut Criterion) {
    let graph = Rmat::new(13).generate();
    let store = build_graph_store(&graph, fmt()).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("gts-bench-persist-{}", std::process::id()));
    let mut g = c.benchmark_group("persistence");
    g.throughput(Throughput::Bytes(store.topology_bytes()));
    g.bench_function("save_store", |b| {
        b.iter(|| gts_storage::save_store(black_box(&store), &path).unwrap());
    });
    gts_storage::save_store(&store, &path).unwrap();
    g.bench_function("load_store_with_validation", |b| {
        b.iter(|| black_box(gts_storage::load_store(&path).unwrap()));
    });
    std::fs::remove_file(&path).ok();
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    use gts_core::queries::QueryEngine;
    let graph = Rmat::new(13).generate();
    let store = build_graph_store(&graph, fmt()).unwrap();
    let mut g = c.benchmark_group("queries");
    g.bench_function("neighbors_cached", |b| {
        let mut q = QueryEngine::new(&store, 64);
        b.iter(|| {
            let mut total = 0usize;
            for v in (0..store.num_vertices()).step_by(97) {
                total += q.neighbors(black_box(v)).len();
            }
            black_box(total)
        });
    });
    g.bench_function("egonet_hub", |b| {
        b.iter(|| {
            let mut q = QueryEngine::new(&store, 64);
            black_box(q.egonet(black_box(1)))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_store_build,
    bench_page_scan,
    bench_cache,
    bench_rmat,
    bench_engine,
    bench_persistence,
    bench_queries
);
criterion_main!(benches);
