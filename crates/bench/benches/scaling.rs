//! Extension experiment — the scalability claims of Sec. 1/Sec. 9 that the
//! paper states without a dedicated figure: "GTS is fairly scalable in
//! terms of the number of GPUs and SSDs, and so, shows a stable speedup
//! when adding a GPU or an SSD to the machine."
//!
//! Two sweeps on RMAT19:
//! * GPUs 1→8 under Strategy-P (in-memory): expect near-linear PageRank
//!   speedup flattening as the fixed WA-copy and sync terms grow (Eq. 1);
//! * SSDs 1→8 under SSD-resident streaming: expect speedup until the
//!   aggregate SSD bandwidth overtakes the PCI-E streaming rate.

use gts_bench::datasets::{Prepared, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::engine::{GtsConfig, StorageLocation};
use gts_core::programs::PageRank;
use gts_core::Strategy;
use gts_graph::Dataset;

fn main() {
    let prep = Prepared::build(Dataset::Rmat(19));

    let mut t = ExperimentTable::new(
        "scaling_gpus",
        "PageRank x10 on RMAT19: adding GPUs (Strategy-P, in-memory)",
        &["gpus", "elapsed(s)", "speedup"],
    );
    let mut base = None;
    for gpus in [1usize, 2, 4, 8] {
        let cfg = GtsConfig {
            num_gpus: gpus,
            strategy: Strategy::Performance,
            cache_limit_bytes: Some(0),
            ..scale::gts_config()
        };
        let mut pr = PageRank::new(prep.store.num_vertices(), PR_ITERATIONS);
        let e = prep.run_gts(cfg, &mut pr).expect("run").elapsed;
        let b = *base.get_or_insert(e);
        t.row(vec![
            gpus.to_string(),
            secs(e),
            format!("{:.2}x", b.as_secs_f64() / e.as_secs_f64()),
        ]);
    }
    t.finish();

    let mut t = ExperimentTable::new(
        "scaling_ssds",
        "PageRank x10 on RMAT19: adding SSDs (1 GPU, SSD-resident, no MMBuf)",
        &["ssds", "elapsed(s)", "speedup"],
    );
    let mut base = None;
    for ssds in [1usize, 2, 4, 8] {
        let cfg = GtsConfig {
            storage: StorageLocation::Ssds(ssds),
            mmbuf_percent: 0,
            cache_limit_bytes: Some(0),
            ..scale::gts_config()
        };
        let mut pr = PageRank::new(prep.store.num_vertices(), PR_ITERATIONS);
        let e = prep.run_gts(cfg, &mut pr).expect("run").elapsed;
        let b = *base.get_or_insert(e);
        t.row(vec![
            ssds.to_string(),
            secs(e),
            format!("{:.2}x", b.as_secs_f64() / e.as_secs_f64()),
        ]);
    }
    t.finish();
    println!(
        "\n  paper claims (Sec. 1/9): stable speedup when adding a GPU or an SSD; \
         the SSD curve flattens once aggregate drive bandwidth passes the PCI-E \
         streaming rate (Sec. 4.1)."
    );
}
