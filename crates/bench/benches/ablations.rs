//! Ablations beyond the paper's figures, for the design choices called out
//! in `DESIGN.md` §5:
//!
//! 1. page-cache replacement policy (the paper defaults to LRU but notes
//!    "other algorithms can be used as well");
//! 2. Strategy-P WA synchronisation path: peer-to-peer merge vs N direct
//!    GPU→host copies (Sec. 4.1's claim that P2P wins as N grows);
//! 3. VWC virtual-warp width (the VWC paper's 4/8/16/32 knob);
//! 4. slotted-page size.

use gts_bench::datasets::{Prepared, BFS_SOURCE, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::engine::{CachePolicyKind, GtsConfig};
use gts_core::programs::{Bfs, PageRank};
use gts_core::{Gts, Strategy};
use gts_gpu::MicroTechnique;
use gts_graph::Dataset;
use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

fn main() {
    let prep = Prepared::build(Dataset::Rmat(18));

    // --- 1. Cache policy.
    let mut t = ExperimentTable::new(
        "ablation_cache_policy",
        "BFS with a 2 MiB cache: replacement policy ablation",
        &["policy", "elapsed(s)", "hit rate %"],
    );
    for (name, policy) in [
        ("LRU", CachePolicyKind::Lru),
        ("FIFO", CachePolicyKind::Fifo),
        ("Random", CachePolicyKind::Random),
    ] {
        let cfg = GtsConfig {
            cache_policy: policy,
            cache_limit_bytes: Some(2 << 20),
            ..scale::gts_config()
        };
        let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
        let r = prep.run_gts(cfg, &mut bfs).expect("run");
        t.row(vec![
            name.into(),
            secs(r.elapsed),
            format!("{:.1}", r.cache_hit_rate * 100.0),
        ]);
    }
    t.finish();

    // --- 2. Sync path for Strategy-P.
    let mut t = ExperimentTable::new(
        "ablation_sync_path",
        "PageRank x10, Strategy-P: P2P merge vs N direct copies",
        &["gpus", "p2p merge(s)", "naive(s)", "p2p speedup"],
    );
    for gpus in [2usize, 4, 8] {
        let run = |p2p: bool| {
            let cfg = GtsConfig {
                num_gpus: gpus,
                strategy: Strategy::Performance,
                p2p_sync: p2p,
                ..scale::gts_config()
            };
            let mut pr = PageRank::new(prep.store.num_vertices(), PR_ITERATIONS);
            prep.run_gts(cfg, &mut pr).expect("run").elapsed
        };
        let with_p2p = run(true);
        let naive = run(false);
        t.row(vec![
            gpus.to_string(),
            secs(with_p2p),
            secs(naive),
            format!("{:.2}x", naive.as_secs_f64() / with_p2p.as_secs_f64()),
        ]);
    }
    t.finish();

    // --- 3. Virtual-warp width.
    let mut t = ExperimentTable::new(
        "ablation_virtual_warp",
        "BFS: VWC virtual-warp width (edge-centric)",
        &["width", "elapsed(s)"],
    );
    for width in [4u32, 8, 16, 32] {
        let cfg = GtsConfig {
            technique: MicroTechnique::EdgeCentric {
                virtual_warp: width,
            },
            cache_limit_bytes: Some(0),
            ..scale::gts_config()
        };
        let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
        let r = prep.run_gts(cfg, &mut bfs).expect("run");
        t.row(vec![width.to_string(), secs(r.elapsed)]);
    }
    t.finish();

    // --- 4. Page size.
    let mut t = ExperimentTable::new(
        "ablation_page_size",
        "PageRank x10: slotted page size sweep ((2,2) IDs)",
        &["page KiB", "#pages", "elapsed(s)"],
    );
    for kib in [16usize, 32, 64, 128, 256] {
        let fmt = PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, kib * 1024);
        let store = build_graph_store(&prep.edges, fmt).expect("store");
        let cfg = GtsConfig {
            cache_limit_bytes: Some(0),
            ..scale::gts_config()
        };
        let mut pr = PageRank::new(store.num_vertices(), PR_ITERATIONS);
        let r = Gts::new(cfg).run(&store, &mut pr).expect("run");
        t.row(vec![
            kib.to_string(),
            store.num_pages().to_string(),
            secs(r.elapsed),
        ]);
    }
    t.finish();
}
