//! Figure 13 (Appendix D) — the additional algorithms: SSSP, CC and BC.
//!
//! Paper shapes to reproduce:
//! * SSSP (13a): GTS beats GraphX/Giraph/PowerGraph/TOTEM on Twitter and
//!   RMAT28;
//! * CC (13b): same ordering, with GraphX's RMAT28 run blowing up (318.9 s)
//!   while GTS stays in single digits;
//! * BC (13c): GTS beats TOTEM on Twitter, RMAT27, RMAT28 (single-source
//!   mode).

use gts_baselines::bsp::BspEngine;
use gts_baselines::cluster::FrameworkProfile;
use gts_baselines::gas::GasEngine;
use gts_baselines::totem::Totem;
use gts_bench::datasets::{Prepared, BFS_SOURCE};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::programs::{Bc, Cc, Sssp};
use gts_graph::Dataset;

fn main() {
    let cluster = scale::cluster();
    let gts_cfg = || gts_core::engine::GtsConfig {
        num_gpus: 2,
        ..scale::gts_config()
    };

    // --- 13a/13b: SSSP and CC on twitter-like and RMAT18 (paper RMAT28).
    for (alg, csv) in [("SSSP", "fig13a_sssp"), ("CC", "fig13b_cc")] {
        let mut t = ExperimentTable::new(
            csv,
            &format!("{alg}: seconds across engines (paper Fig. 13)"),
            &["dataset", "GraphX", "Giraph", "PowerGraph", "TOTEM", "GTS"],
        );
        for d in [Dataset::TwitterLike, Dataset::Rmat(18)] {
            let prep = Prepared::build(d);
            let mut row = vec![d.name()];
            for profile in [
                scale::framework(FrameworkProfile::graphx()),
                scale::framework(FrameworkProfile::giraph()),
            ] {
                let e = BspEngine::new(cluster.clone(), profile);
                let r = if alg == "SSSP" {
                    e.run_sssp(&prep.csr, BFS_SOURCE as u32).map(|x| x.1)
                } else {
                    e.run_cc(&prep.csr).map(|x| x.1)
                };
                row.push(match r {
                    Ok(run) => secs(run.elapsed),
                    Err(_) => "O.O.M.".into(),
                });
            }
            let mut gas = GasEngine::new(cluster.clone());
            gas.profile = scale::framework(gas.profile);
            let r = if alg == "SSSP" {
                gas.run_sssp(&prep.csr, BFS_SOURCE as u32).map(|x| x.1)
            } else {
                gas.run_cc(&prep.csr).map(|x| x.1)
            };
            row.push(match r {
                Ok(run) => secs(run.elapsed),
                Err(_) => "O.O.M.".into(),
            });
            let totem = Totem::new(scale::totem_config().with_gpu_fraction(0.6));
            let r = if alg == "SSSP" {
                totem.run_sssp(&prep.csr, BFS_SOURCE as u32).map(|x| x.1)
            } else {
                totem.run_cc(&prep.csr).map(|x| x.1)
            };
            row.push(match r {
                Ok(run) => secs(run.elapsed),
                Err(_) => "O.O.M.".into(),
            });
            let elapsed = if alg == "SSSP" {
                let mut p = Sssp::new(prep.store.num_vertices(), BFS_SOURCE);
                prep.run_gts(gts_cfg(), &mut p).map(|r| r.elapsed)
            } else {
                let mut p = Cc::new(prep.store.num_vertices());
                prep.run_gts(gts_cfg(), &mut p).map(|r| r.elapsed)
            };
            row.push(match elapsed {
                Ok(e) => secs(e),
                Err(_) => "O.O.M.".into(),
            });
            t.row(row);
        }
        t.finish();
    }

    // --- 13c: BC, TOTEM vs GTS.
    let mut t = ExperimentTable::new(
        "fig13c_bc",
        "Betweenness centrality (single source): TOTEM vs GTS (paper Fig. 13c)",
        &["dataset", "paper TOTEM", "paper GTS", "TOTEM", "GTS"],
    );
    let paper = [
        (Dataset::TwitterLike, 11.76, 7.82),
        (Dataset::Rmat(17), 22.68, 13.05),
        (Dataset::Rmat(18), 97.67, 26.23),
    ];
    for (d, paper_totem, paper_gts) in paper {
        let prep = Prepared::build(d);
        let totem = Totem::new(scale::totem_config().with_gpu_fraction(0.6));
        let totem_cell = match totem.run_bc(&prep.csr, BFS_SOURCE as u32) {
            Ok((_, r)) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        };
        let mut bc = Bc::new(prep.store.num_vertices(), BFS_SOURCE);
        let gts_cell = match prep.run_gts(gts_cfg(), &mut bc) {
            Ok(r) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        };
        t.row(vec![
            d.name(),
            paper_totem.to_string(),
            paper_gts.to_string(),
            totem_cell,
            gts_cell,
        ]);
    }
    t.finish();
    println!(
        "\n  paper Fig. 13 anchors (seconds): SSSP twitter — GraphX 64, Giraph 245, \
         PowerGraph 17.9, TOTEM 8.9, GTS 2.8; CC twitter — GraphX 106, Giraph 227, \
         PowerGraph 50, TOTEM 59.5, GTS 7.6."
    );
}
