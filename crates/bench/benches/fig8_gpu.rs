//! Figure 8 — GTS vs. the GPU-based engines (MapGraph, CuSha, TOTEM).
//!
//! Paper shapes to reproduce:
//! * MapGraph OOMs before CuSha, CuSha OOMs long before TOTEM (they need
//!   the whole graph in device memory; CuSha cannot run PageRank at all
//!   because prevPR+nextPR double its state);
//! * TOTEM slightly outperforms GTS for PageRank on the *small* graphs
//!   (its GPU partition covers everything, no streaming) but loses badly
//!   as graphs grow and its CPU share swells;
//! * for BFS, GTS consistently outperforms TOTEM;
//! * TOTEM cannot process RMAT20+ (paper RMAT30+) — contiguous host CSR.

use gts_baselines::gpu_only::{GpuOnlyEngine, GpuOnlyProfile};
use gts_baselines::totem::Totem;
use gts_bench::datasets::{Prepared, BFS_SOURCE, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::programs::{Bfs, PageRank};
use gts_graph::Dataset;

fn main() {
    let datasets = [
        Dataset::TwitterLike,
        Dataset::Uk2007Like,
        Dataset::YahooWebLike,
        Dataset::Rmat(17),
        Dataset::Rmat(18),
        Dataset::Rmat(19),
        Dataset::Rmat(20),
    ];
    let mut bfs_table = ExperimentTable::new(
        "fig8_bfs",
        "BFS: GTS vs GPU engines, seconds (paper Fig. 8a)",
        &["dataset", "MapGraph", "CuSha", "TOTEM", "GTS"],
    );
    let mut pr_table = ExperimentTable::new(
        "fig8_pagerank",
        "PageRank x10: GTS vs GPU engines, seconds (paper Fig. 8b)",
        &["dataset", "MapGraph", "CuSha", "TOTEM", "GTS"],
    );
    for d in datasets {
        let prep = Prepared::build(d);
        let mapgraph = GpuOnlyEngine::new(GpuOnlyProfile::mapgraph(), scale::gpu());
        let cusha = GpuOnlyEngine::new(GpuOnlyProfile::cusha(), scale::gpu());
        // TOTEM with the per-dataset recommended ratio class: denser
        // graphs get a bigger GPU share (Appendix C); the capacity clamp
        // inside the engine does the rest.
        let totem = Totem::new(scale::totem_config().with_gpu_fraction(0.6));

        let mut bfs_row = vec![d.name()];
        bfs_row.push(match mapgraph.run_bfs(&prep.csr, BFS_SOURCE as u32) {
            Ok((_, r)) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        bfs_row.push(match cusha.run_bfs(&prep.csr, BFS_SOURCE as u32) {
            Ok((_, r)) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        bfs_row.push(match totem.run_bfs(&prep.csr, BFS_SOURCE as u32) {
            Ok((_, r)) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        let cfg = gts_core::engine::GtsConfig {
            num_gpus: 2,
            ..scale::gts_config()
        };
        let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
        bfs_row.push(match prep.run_gts(cfg.clone(), &mut bfs) {
            Ok(r) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        bfs_table.row(bfs_row);

        let mut pr_row = vec![d.name()];
        pr_row.push(match mapgraph.run_pagerank(&prep.csr, PR_ITERATIONS) {
            Ok((_, r)) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        pr_row.push(match cusha.run_pagerank(&prep.csr, PR_ITERATIONS) {
            Ok((_, r)) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        pr_row.push(match totem.run_pagerank(&prep.csr, PR_ITERATIONS) {
            Ok((_, r)) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        let mut pr = PageRank::new(prep.store.num_vertices(), PR_ITERATIONS);
        pr_row.push(match prep.run_gts(cfg, &mut pr) {
            Ok(r) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        pr_table.row(pr_row);
    }
    bfs_table.finish();
    pr_table.finish();
    println!(
        "\n  paper Fig. 8 anchors (seconds): BFS twitter — CuSha 3.6, TOTEM 2.2, \
         GTS 0.9; PageRank twitter — TOTEM 5.6, GTS 7.2 (TOTEM wins small PR); \
         RMAT29 PageRank — TOTEM 176.2, GTS 59.6; TOTEM has no RMAT30+ results."
    );
}
