//! Figure 7 — GTS vs. the shared-memory CPU engines (MTGL, Galois, Ligra,
//! Ligra+) for BFS and PageRank.
//!
//! Paper shapes to reproduce:
//! * the frontier engines (Galois/Ligra/Ligra+) crush MTGL;
//! * on small graphs, Galois/Ligra land in the same band as GTS for BFS
//!   (either side may win slightly);
//! * for PageRank GTS clearly beats every CPU engine;
//! * the CPU engines disappear (O.O.M.) for YahooWeb-class and RMAT19+
//!   graphs (paper: RMAT29/30) while GTS keeps going.

use gts_baselines::cpu::CpuProfile;
use gts_bench::datasets::{Prepared, BFS_SOURCE, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::programs::{Bfs, PageRank};
use gts_graph::Dataset;

fn main() {
    let profiles = [
        CpuProfile::mtgl(),
        CpuProfile::galois(),
        CpuProfile::ligra(),
        CpuProfile::ligra_plus(),
    ];
    let datasets = [
        Dataset::TwitterLike,
        Dataset::Uk2007Like,
        Dataset::YahooWebLike,
        Dataset::Rmat(17),
        Dataset::Rmat(18),
        Dataset::Rmat(19),
        Dataset::Rmat(20),
    ];
    let mut bfs_table = ExperimentTable::new(
        "fig7_bfs",
        "BFS: GTS vs CPU engines, seconds (paper Fig. 7a)",
        &["dataset", "MTGL", "Galois", "Ligra", "Ligra+", "GTS"],
    );
    let mut pr_table = ExperimentTable::new(
        "fig7_pagerank",
        "PageRank x10: GTS vs CPU engines, seconds (paper Fig. 7b)",
        &["dataset", "MTGL", "Galois", "Ligra", "Ligra+", "GTS"],
    );
    for d in datasets {
        let prep = Prepared::build(d);
        let mut bfs_row = vec![d.name()];
        let mut pr_row = vec![d.name()];
        for p in &profiles {
            let e = scale::cpu_engine(p.clone());
            bfs_row.push(match e.run_bfs(&prep.csr, BFS_SOURCE as u32) {
                Ok((_, r)) => secs(r.elapsed),
                Err(_) => "O.O.M.".into(),
            });
            pr_row.push(match e.run_pagerank(&prep.csr, PR_ITERATIONS) {
                Ok((_, r)) => secs(r.elapsed),
                Err(_) => "O.O.M.".into(),
            });
        }
        let cfg = gts_core::engine::GtsConfig {
            num_gpus: 2,
            ..scale::gts_config()
        };
        let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
        bfs_row.push(match prep.run_gts(cfg.clone(), &mut bfs) {
            Ok(r) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        let mut pr = PageRank::new(prep.store.num_vertices(), PR_ITERATIONS);
        pr_row.push(match prep.run_gts(cfg, &mut pr) {
            Ok(r) => secs(r.elapsed),
            Err(_) => "O.O.M.".into(),
        });
        bfs_table.row(bfs_row);
        pr_table.row(pr_row);
    }
    bfs_table.finish();
    pr_table.finish();
    println!(
        "\n  paper Fig. 7 anchors (seconds): BFS twitter — MTGL 6, Galois 1.3, \
         Ligra 0.6, GTS 0.9; PageRank twitter — MTGL 34.6, Galois 95 (RMAT28 572), \
         Ligra 34.4, GTS 7.2; CPU engines have no RMAT29/30 or YahooWeb results."
    );
}
