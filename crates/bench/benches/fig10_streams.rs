//! Figure 10 — elapsed time versus the number of asynchronous streams
//! (1..32) for RMAT16..19 (the paper's RMAT26..29), BFS and PageRank.
//!
//! Paper shape to reproduce: performance improves steadily as streams grow
//! toward the CUDA limit of 32, for both algorithms — even for BFS, whose
//! transfer:kernel ratios alone would suggest saturation at 2-3 streams
//! (Sec. 3.2's queue-ahead effect).

use gts_bench::datasets::{Prepared, BFS_SOURCE, PR_ITERATIONS};
use gts_bench::scale;
use gts_bench::table::{secs, ExperimentTable};
use gts_core::programs::{Bfs, PageRank};
use gts_graph::Dataset;

fn main() {
    let streams = [1usize, 2, 4, 8, 16, 32];
    let datasets = [
        Dataset::Rmat(16),
        Dataset::Rmat(17),
        Dataset::Rmat(18),
        Dataset::Rmat(19),
    ];
    for (alg, pagerank) in [("bfs", false), ("pagerank", true)] {
        let mut t = ExperimentTable::new(
            &format!("fig10_{alg}"),
            &format!("{alg}: elapsed seconds vs #streams (paper Fig. 10)"),
            &["dataset", "1", "2", "4", "8", "16", "32"],
        );
        for d in datasets {
            let prep = Prepared::build(d);
            let mut row = vec![d.name()];
            let mut prev = f64::INFINITY;
            let mut monotone = true;
            for &s in &streams {
                let cfg = gts_core::engine::GtsConfig {
                    num_streams: s,
                    // Cache off: the sweep isolates the streaming pipeline.
                    cache_limit_bytes: Some(0),
                    ..scale::gts_config()
                };
                let elapsed = if pagerank {
                    let mut pr = PageRank::new(prep.store.num_vertices(), PR_ITERATIONS);
                    prep.run_gts(cfg, &mut pr).expect("run").elapsed
                } else {
                    let mut bfs = Bfs::new(prep.store.num_vertices(), BFS_SOURCE);
                    prep.run_gts(cfg, &mut bfs).expect("run").elapsed
                };
                let e = elapsed.as_secs_f64();
                if e > prev * 1.001 {
                    monotone = false;
                }
                prev = e;
                row.push(secs(elapsed));
            }
            row[0] = format!(
                "{}{}",
                d.name(),
                if monotone { "" } else { " (non-monotone)" }
            );
            t.row(row);
        }
        t.finish();
    }
    println!("\n  paper shape: elapsed time decreases steadily from 1 to 32 streams.");
}
