//! Cargo home for the workspace's cross-crate integration tests (sources
//! live in the top-level `tests/` directory; a virtual workspace root
//! cannot own targets).
