//! Simulated time: nanosecond-resolution instants and durations.
//!
//! Simulated time is kept separate from `std::time` on purpose: the engines
//! in this workspace *execute* work on the host CPU (so results are real) but
//! *account* for it on a simulated clock that models the paper's hardware.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking, so callers comparing clocks across resources stay total.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs
    /// clamp to zero; this keeps cost-model arithmetic total.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_finite() && s > 0.0 {
            SimDuration((s * 1e9).round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds in this duration, as a float (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        // Saturating: transfer times themselves saturate at u64::MAX (a
        // deliberately-degenerate bandwidth), and the clock must stay
        // total rather than wrap in release builds.
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Render nanoseconds with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        assert_eq!((t + d).as_nanos(), 150);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO, "since saturates");
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_pathological_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_and_scalar_ops() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
        assert_eq!((SimDuration::from_nanos(10) * 3).as_nanos(), 30);
        assert_eq!((SimDuration::from_nanos(10) / 2).as_nanos(), 5);
    }
}
