//! Execution timelines: recorded busy intervals per simulated resource.
//!
//! Figures 3 and 4 of the paper show profiler timelines of copy operations
//! and kernel executions across CUDA streams. [`Timeline`] records the same
//! information from the simulator and renders a textual version of those
//! figures (one lane per stream/resource, bars for busy intervals).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One recorded busy interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Lane this span belongs to (e.g. `stream3`, `h2d`, `ssd0`).
    pub lane: String,
    /// Short label describing the operation (e.g. `copy SP17`, `K_PR`).
    pub label: String,
    /// Category used when rendering (copies vs kernels get different glyphs).
    pub kind: SpanKind,
    /// Service start.
    pub start: SimTime,
    /// Service end.
    pub end: SimTime,
}

/// Rendering category for a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A data transfer (short red bars in the paper's Fig. 4).
    Copy,
    /// A kernel execution (long green bars in the paper's Fig. 4).
    Kernel,
    /// Storage I/O.
    Io,
    /// Anything else (sync, merge, ...).
    Other,
}

impl SpanKind {
    fn glyph(self) -> char {
        match self {
            SpanKind::Copy => '▒',
            SpanKind::Kernel => '█',
            SpanKind::Io => '·',
            SpanKind::Other => '~',
        }
    }
}

/// An append-only recording of spans across lanes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// Create an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one busy interval.
    pub fn record(
        &mut self,
        lane: impl Into<String>,
        label: impl Into<String>,
        kind: SpanKind,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(end >= start, "span must not end before it starts");
        self.spans.push(Span {
            lane: lane.into(),
            label: label.into(),
            kind,
            start,
            end,
        });
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Latest end time across all spans (the makespan).
    pub fn end_time(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Total busy time per lane.
    pub fn busy_per_lane(&self) -> BTreeMap<String, SimDuration> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            *out.entry(s.lane.clone()).or_insert(SimDuration::ZERO) += s.end - s.start;
        }
        out
    }

    /// Render an ASCII timeline `width` characters wide, one row per lane
    /// (lanes sorted by name). This is the textual analogue of the paper's
    /// Fig. 4 profiler screenshots.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let end = self.end_time();
        if end == SimTime::ZERO {
            return String::from("(empty timeline)\n");
        }
        let mut lanes: BTreeMap<&str, Vec<&Span>> = BTreeMap::new();
        for s in &self.spans {
            lanes.entry(&s.lane).or_default().push(s);
        }
        let name_w = lanes.keys().map(|k| k.len()).max().unwrap_or(4).max(4);
        let scale = |t: SimTime| -> usize {
            ((t.as_nanos() as u128 * width as u128) / end.as_nanos().max(1) as u128) as usize
        };
        let mut out = String::new();
        for (lane, spans) in &lanes {
            let mut row = vec![' '; width];
            for s in spans {
                let a = scale(s.start).min(width - 1);
                let b = scale(s.end).clamp(a + 1, width);
                for c in &mut row[a..b] {
                    *c = s.kind.glyph();
                }
            }
            out.push_str(&format!("{lane:>name_w$} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:>name_w$} 0{:>w$}\n",
            "",
            format!("{end}"),
            w = width
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn records_and_summarises() {
        let mut tl = Timeline::new();
        tl.record("s1", "copy", SpanKind::Copy, t(0), t(10));
        tl.record("s1", "kern", SpanKind::Kernel, t(10), t(40));
        tl.record("s2", "copy", SpanKind::Copy, t(10), t(20));
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.end_time(), t(40));
        let busy = tl.busy_per_lane();
        assert_eq!(busy["s1"].as_nanos(), 40);
        assert_eq!(busy["s2"].as_nanos(), 10);
    }

    #[test]
    fn ascii_render_has_one_row_per_lane() {
        let mut tl = Timeline::new();
        tl.record("stream1", "k", SpanKind::Kernel, t(0), t(100));
        tl.record("stream2", "c", SpanKind::Copy, t(50), t(100));
        let s = tl.render_ascii(40);
        assert_eq!(s.lines().count(), 3, "two lanes + axis");
        assert!(s.contains("stream1"));
        assert!(s.contains('█'));
        assert!(s.contains('▒'));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let tl = Timeline::new();
        assert!(tl.render_ascii(40).contains("empty"));
        assert!(tl.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let mut tl = Timeline::new();
        tl.record("a", "x", SpanKind::Io, t(1), t(2));
        let json = serde_json::to_string(&tl).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back.spans(), tl.spans());
    }
}
