//! Bandwidth modelling: bytes-per-second rates and transfer times.
//!
//! The GTS cost models (paper Sec. 5) are written in terms of communication
//! rates: `c1` (PCI-E chunk-copy, ~16 GB/s), `c2` (PCI-E streaming copy,
//! ~6 GB/s), SSD sequential read (~2 GB/s per drive), HDD (~165 MB/s per
//! drive), and Infiniband QDR (~40 Gbps) for the distributed baselines.

use crate::time::SimDuration;
use std::fmt;

/// A data-transfer rate in bytes per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Construct from bytes per second. A zero rate is accepted but every
    /// transfer over it takes [`SimDuration::ZERO`]'s complement: callers
    /// should treat zero as "infinitely fast" is *not* intended, so we map
    /// zero to 1 B/s to keep arithmetic total and obviously wrong in output.
    pub fn bytes_per_sec(b: u64) -> Self {
        Bandwidth(b.max(1))
    }

    /// Construct from mebibytes per second.
    pub fn mib_per_sec(m: u64) -> Self {
        Self::bytes_per_sec(m * (1 << 20))
    }

    /// Construct from gibibytes per second.
    pub fn gib_per_sec(g: u64) -> Self {
        Self::bytes_per_sec(g * (1 << 30))
    }

    /// Construct from gigabits per second (network links).
    pub fn gbit_per_sec(g: u64) -> Self {
        Self::bytes_per_sec(g * 1_000_000_000 / 8)
    }

    /// The raw rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Time to move `bytes` at this rate (rounded up to the next ns).
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        // ns = bytes * 1e9 / rate, computed in u128 to avoid overflow for
        // multi-terabyte transfers.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(self.0 as u128);
        SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Scale the rate by a rational factor (used to split device bandwidth
    /// across concurrent consumers).
    pub fn scaled(self, num: u64, den: u64) -> Bandwidth {
        Bandwidth::bytes_per_sec((self.0 as u128 * num as u128 / den.max(1) as u128) as u64)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= (1u64 << 30) as f64 {
            write!(f, "{:.2} GiB/s", b / (1u64 << 30) as f64)
        } else if b >= (1u64 << 20) as f64 {
            write!(f, "{:.2} MiB/s", b / (1u64 << 20) as f64)
        } else {
            write!(f, "{b} B/s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_hand_computation() {
        let bw = Bandwidth::bytes_per_sec(1_000_000_000); // 1 GB/s
        assert_eq!(bw.transfer_time(1_000_000_000).as_secs_f64(), 1.0);
        assert_eq!(bw.transfer_time(500).as_nanos(), 500);
    }

    #[test]
    fn transfer_time_rounds_up() {
        let bw = Bandwidth::bytes_per_sec(3);
        // 1 byte at 3 B/s = 333_333_333.33.. ns, rounded up.
        assert_eq!(bw.transfer_time(1).as_nanos(), 333_333_334);
    }

    #[test]
    fn zero_rate_is_clamped() {
        let bw = Bandwidth::bytes_per_sec(0);
        assert_eq!(bw.as_bytes_per_sec(), 1);
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(Bandwidth::mib_per_sec(1).as_bytes_per_sec(), 1 << 20);
        assert_eq!(Bandwidth::gib_per_sec(2).as_bytes_per_sec(), 2u64 << 30);
        assert_eq!(
            Bandwidth::gbit_per_sec(40).as_bytes_per_sec(),
            5_000_000_000
        );
    }

    #[test]
    fn huge_transfers_do_not_overflow() {
        let bw = Bandwidth::mib_per_sec(100);
        let d = bw.transfer_time(u64::MAX / 2);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn scaled_rate() {
        let bw = Bandwidth::bytes_per_sec(1000).scaled(1, 4);
        assert_eq!(bw.as_bytes_per_sec(), 250);
    }
}
