#![warn(missing_docs)]

//! # gts-sim — discrete-event simulation kernel
//!
//! Shared foundation for the simulated hardware substrates of the GTS
//! reproduction: the GPU model (`gts-gpu`), the SSD/HDD block devices
//! (`gts-storage`) and the cluster/network model (`gts-baselines`).
//!
//! The paper's experiments run on hardware we do not have (TITAN X GPUs,
//! PCI-E SSDs, a 31-node Infiniband cluster). Instead of a callback-driven
//! event loop, this crate provides *schedulable resources*: every simulated
//! operation (a PCI-E transfer, a kernel execution, an SSD read, a network
//! message) is submitted with a ready-time and a duration, and a [`Resource`]
//! assigns it a start/end on a FIFO server with bounded concurrency. Because
//! all dependencies are known at submission time (stream ordering, buffer
//! availability, superstep barriers), this computes exactly the same schedule
//! a classic event-driven simulator would, with far less machinery.
//!
//! All simulated time is deterministic, which makes the paper-shape
//! experiments reproducible bit-for-bit across runs.
//!
//! ```
//! use gts_sim::{Bandwidth, Resource, SimDuration, SimTime};
//!
//! // A PCI-E-like copy engine: one op at a time, FIFO.
//! let mut h2d = Resource::new("h2d", 1);
//! let bw = Bandwidth::gib_per_sec(6);
//! let a = h2d.submit(SimTime::ZERO, bw.transfer_time(64 * 1024));
//! let b = h2d.submit(SimTime::ZERO, bw.transfer_time(64 * 1024));
//! assert_eq!(b.start, a.end); // copies serialise
//! ```

pub mod bandwidth;
pub mod resource;
pub mod time;

pub use bandwidth::Bandwidth;
pub use resource::Resource;
pub use time::{SimDuration, SimTime};
