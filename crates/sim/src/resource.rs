//! FIFO resources with bounded concurrency.
//!
//! A [`Resource`] models one piece of simulated hardware that serves
//! operations in submission order: a PCI-E copy engine (concurrency 1), the
//! GPU compute engine (concurrency 32 — the CUDA limit the paper cites for
//! concurrent kernels), an SSD channel, or a network link.
//!
//! Submission order *is* service order (non-preemptive FIFO): an operation
//! submitted with a `ready` time begins at the later of its ready time and
//! the time a server slot frees up, where slots are granted in submission
//! order. This matches how the CUDA driver dispatches queued work and keeps
//! the whole simulation deterministic.

use crate::time::{SimDuration, SimTime};

/// The scheduled placement of one operation on a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled {
    /// When service began.
    pub start: SimTime,
    /// When service completed (`start + duration`).
    pub end: SimTime,
}

/// A FIFO server with `concurrency` identical slots.
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    /// Free times of each server slot, kept unsorted; we always pick the
    /// earliest-free slot, which preserves FIFO service order because
    /// submissions arrive with monotonically processed ready times.
    slots: Vec<SimTime>,
    /// Earliest time the next submission may start, enforcing FIFO even when
    /// a later submission has an earlier ready time.
    fifo_front: SimTime,
    busy: SimDuration,
    served: u64,
}

impl Resource {
    /// Create a resource with the given number of parallel server slots.
    ///
    /// # Panics
    /// Panics if `concurrency` is zero — a resource that can never serve is
    /// a configuration bug, not a runtime condition.
    pub fn new(name: impl Into<String>, concurrency: usize) -> Self {
        assert!(concurrency > 0, "resource concurrency must be >= 1");
        Resource {
            name: name.into(),
            slots: vec![SimTime::ZERO; concurrency],
            fifo_front: SimTime::ZERO,
            busy: SimDuration::ZERO,
            served: 0,
        }
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parallel server slots.
    pub fn concurrency(&self) -> usize {
        self.slots.len()
    }

    /// Submit an operation that becomes ready at `ready` and needs `duration`
    /// of service. Returns its scheduled start/end.
    pub fn submit(&mut self, ready: SimTime, duration: SimDuration) -> Scheduled {
        // FIFO: we may not start before any previously submitted op started.
        let ready = ready.max(self.fifo_front);
        // Pick the slot that frees earliest.
        let slot = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("resource has at least one slot");
        let start = ready.max(self.slots[slot]);
        let end = start + duration;
        self.slots[slot] = end;
        self.fifo_front = start;
        self.busy += duration;
        self.served += 1;
        Scheduled { start, end }
    }

    /// The earliest time any server slot becomes free — before this
    /// instant every slot is busy, so a newly ready operation would queue.
    pub fn earliest_free(&self) -> SimTime {
        self.slots
            .iter()
            .copied()
            .fold(SimTime::from_nanos(u64::MAX), SimTime::min)
    }

    /// The time at which all currently scheduled work completes.
    pub fn drain_time(&self) -> SimTime {
        self.slots.iter().copied().fold(SimTime::ZERO, SimTime::max)
    }

    /// Total service time delivered so far (sums across slots).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of operations served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilisation in [0, 1] relative to a makespan: busy time divided by
    /// `concurrency * makespan`.
    pub fn utilisation(&self, makespan: SimDuration) -> f64 {
        if makespan.is_zero() {
            return 0.0;
        }
        self.busy.as_nanos() as f64 / (self.slots.len() as f64 * makespan.as_nanos() as f64)
    }

    /// Reset to an idle state at t = 0, keeping the configuration.
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            *s = SimTime::ZERO;
        }
        self.fifo_front = SimTime::ZERO;
        self.busy = SimDuration::ZERO;
        self.served = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }
    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn single_slot_serialises() {
        let mut r = Resource::new("h2d", 1);
        let a = r.submit(t(0), d(100));
        let b = r.submit(t(0), d(50));
        assert_eq!(a.start, t(0));
        assert_eq!(a.end, t(100));
        assert_eq!(b.start, t(100), "second op waits for the first");
        assert_eq!(b.end, t(150));
    }

    #[test]
    fn idle_gap_respected() {
        let mut r = Resource::new("h2d", 1);
        r.submit(t(0), d(10));
        let late = r.submit(t(1_000), d(10));
        assert_eq!(late.start, t(1_000), "resource idles until ready time");
    }

    #[test]
    fn fifo_holds_even_with_earlier_ready_after_later() {
        let mut r = Resource::new("h2d", 1);
        let first = r.submit(t(500), d(10));
        // Submitted later but ready earlier: must not start before `first`.
        let second = r.submit(t(0), d(10));
        assert!(second.start >= first.start);
    }

    #[test]
    fn two_slots_overlap() {
        let mut r = Resource::new("compute", 2);
        let a = r.submit(t(0), d(100));
        let b = r.submit(t(0), d(100));
        let c = r.submit(t(0), d(100));
        assert_eq!(a.start, t(0));
        assert_eq!(b.start, t(0), "second kernel runs concurrently");
        assert_eq!(c.start, t(100), "third waits for a free slot");
    }

    #[test]
    fn stats_accumulate() {
        let mut r = Resource::new("x", 1);
        r.submit(t(0), d(40));
        r.submit(t(0), d(60));
        assert_eq!(r.busy_time(), d(100));
        assert_eq!(r.served(), 2);
        assert_eq!(r.drain_time(), t(100));
        let u = r.utilisation(d(200));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new("x", 3);
        r.submit(t(0), d(40));
        r.reset();
        assert_eq!(r.drain_time(), SimTime::ZERO);
        assert_eq!(r.served(), 0);
        assert_eq!(r.busy_time(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "concurrency")]
    fn zero_concurrency_panics() {
        let _ = Resource::new("bad", 0);
    }
}
