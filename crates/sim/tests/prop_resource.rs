//! Property tests of the simulation kernel: schedules produced by
//! [`Resource`] must be feasible (no slot oversubscription), work-conserving
//! and deterministic for any submission sequence.

use gts_sim::{Resource, SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Op {
    ready: u64,
    dur: u64,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u64..10_000, 1u64..1_000).prop_map(|(ready, dur)| Op { ready, dur }),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn schedules_are_feasible(ops in arb_ops(), concurrency in 1usize..8) {
        let mut r = Resource::new("x", concurrency);
        let mut spans = Vec::new();
        for op in &ops {
            let s = r.submit(SimTime::from_nanos(op.ready), SimDuration::from_nanos(op.dur));
            // Never starts before ready; lasts exactly the service time.
            prop_assert!(s.start >= SimTime::from_nanos(op.ready));
            prop_assert_eq!(s.end - s.start, SimDuration::from_nanos(op.dur));
            spans.push(s);
        }
        // At no instant do more than `concurrency` ops overlap. Check at
        // every start point.
        for probe in &spans {
            let overlapping = spans
                .iter()
                .filter(|s| s.start <= probe.start && probe.start < s.end)
                .count();
            prop_assert!(
                overlapping <= concurrency,
                "{} ops overlap at {:?} with concurrency {}",
                overlapping, probe.start, concurrency
            );
        }
        // Busy time is the sum of durations.
        let total: u64 = ops.iter().map(|o| o.dur).sum();
        prop_assert_eq!(r.busy_time(), SimDuration::from_nanos(total));
        prop_assert_eq!(r.served(), ops.len() as u64);
        // Drain time is the max end.
        let max_end = spans.iter().map(|s| s.end).max().unwrap();
        prop_assert_eq!(r.drain_time(), max_end);
    }

    #[test]
    fn fifo_order_is_preserved(ops in arb_ops()) {
        // With a single slot, starts must be non-decreasing in submission
        // order regardless of ready times.
        let mut r = Resource::new("fifo", 1);
        let mut last = SimTime::ZERO;
        for op in &ops {
            let s = r.submit(SimTime::from_nanos(op.ready), SimDuration::from_nanos(op.dur));
            prop_assert!(s.start >= last);
            last = s.start;
        }
    }

    #[test]
    fn schedules_are_deterministic(ops in arb_ops(), concurrency in 1usize..8) {
        let run = || {
            let mut r = Resource::new("d", concurrency);
            ops.iter()
                .map(|op| r.submit(SimTime::from_nanos(op.ready), SimDuration::from_nanos(op.dur)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn single_slot_makespan_is_work_conserving(ops in arb_ops()) {
        // With one slot, the makespan never exceeds max_ready + total work
        // and never undercuts total work after the earliest ready time.
        let mut r = Resource::new("wc", 1);
        for op in &ops {
            r.submit(SimTime::from_nanos(op.ready), SimDuration::from_nanos(op.dur));
        }
        let total: u64 = ops.iter().map(|o| o.dur).sum();
        let max_ready = ops.iter().map(|o| o.ready).max().unwrap();
        let min_ready = ops.iter().map(|o| o.ready).min().unwrap();
        prop_assert!(r.drain_time().as_nanos() <= max_ready + total);
        prop_assert!(r.drain_time().as_nanos() >= min_ready + total);
    }

    #[test]
    fn bandwidth_transfer_time_is_monotone(
        bytes_a in 0u64..1u64 << 40,
        bytes_b in 0u64..1u64 << 40,
        rate in 1u64..1u64 << 35,
    ) {
        use gts_sim::Bandwidth;
        let bw = Bandwidth::bytes_per_sec(rate);
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(bw.transfer_time(lo) <= bw.transfer_time(hi));
        // Faster links are never slower.
        let faster = Bandwidth::bytes_per_sec(rate.saturating_mul(2));
        prop_assert!(faster.transfer_time(hi) <= bw.transfer_time(hi));
    }
}
