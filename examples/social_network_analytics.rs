//! Social-network analytics on a Twitter-like graph: PageRank influencer
//! ranking, weakly connected components, and single-source shortest paths
//! — the workload mix the paper's introduction motivates (social networks,
//! business intelligence).
//!
//! Exercises multi-GPU Strategy-P (Sec. 4.1): the topology stream is
//! hash-partitioned across two simulated GPUs, WA replicas are merged
//! peer-to-peer.
//!
//! ```sh
//! cargo run --release -p gts-examples --example social_network_analytics
//! ```

use gts_core::engine::Gts;
use gts_core::programs::{Cc, PageRank, Sssp};
use gts_core::Strategy;
use gts_graph::Dataset;
use gts_storage::{build_graph_store, PageFormatConfig};
use std::collections::HashMap;

fn main() {
    let graph = Dataset::TwitterLike.generate();
    let store = build_graph_store(&graph, PageFormatConfig::small_default()).expect("store");
    println!(
        "twitter-like: {} users, {} follow edges",
        store.num_vertices(),
        store.num_edges()
    );

    let engine = Gts::builder()
        .num_gpus(2)
        .strategy(Strategy::Performance)
        .build()
        .expect("valid config");

    // Influencer ranking.
    let mut pr = PageRank::new(store.num_vertices(), 10);
    let report = engine.run(&store, &mut pr).expect("pagerank");
    let mut ranked: Vec<(usize, f32)> = pr.ranks().iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\ntop-5 influencers (PageRank, simulated {}):",
        report.elapsed
    );
    for (user, score) in ranked.iter().take(5) {
        println!("  user {user:>6}  score {score:.6}");
    }

    // Community structure: weakly connected components.
    let mut cc = Cc::new(store.num_vertices());
    let report = engine.run(&store, &mut cc).expect("cc");
    let mut sizes: HashMap<u64, u64> = HashMap::new();
    for &label in cc.labels() {
        *sizes.entry(label).or_insert(0) += 1;
    }
    let mut sizes: Vec<(u64, u64)> = sizes.into_iter().collect();
    sizes.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!(
        "\ncomponents: {} total (simulated {}, {} sweeps); largest: {:?}",
        sizes.len(),
        report.elapsed,
        report.sweeps,
        &sizes[..3.min(sizes.len())]
    );

    // Degrees of separation from the top influencer, with edge weights as
    // interaction costs.
    let source = ranked[0].0 as u64;
    let mut sssp = Sssp::new(store.num_vertices(), source);
    let report = engine.run(&store, &mut sssp).expect("sssp");
    let reachable = sssp.distances().iter().filter(|&&d| d != u32::MAX).count();
    let avg: f64 = sssp
        .distances()
        .iter()
        .filter(|&&d| d != u32::MAX && d > 0)
        .map(|&d| d as f64)
        .sum::<f64>()
        / reachable.max(1) as f64;
    println!(
        "\nshortest paths from user {source}: {reachable} reachable, mean cost {avg:.1} \
         (simulated {}, {} levels)",
        report.elapsed, report.sweeps
    );
}
