//! Page-level graph queries: neighborhood, egonet, induced subgraph and
//! cross-edges — the query-style traversals the paper's Sec. 3.3 lists.
//!
//! Unlike the sweep algorithms, these touch only the few pages holding the
//! queried vertices (coarse-grained *random* access, the other half of
//! GTS's hybrid access story), with the GPU page cache absorbing repeats.
//!
//! ```sh
//! cargo run --release -p gts-examples --example subgraph_queries
//! ```

use gts_core::queries::QueryEngine;
use gts_graph::generate::rmat;
use gts_storage::{build_graph_store, PageFormatConfig};
use std::collections::BTreeSet;

fn main() {
    let graph = rmat(15);
    let store = build_graph_store(&graph, PageFormatConfig::small_default()).expect("store");
    println!(
        "graph: {} vertices, {} edges in {} pages",
        store.num_vertices(),
        store.num_edges(),
        store.num_pages()
    );

    let mut q = QueryEngine::new(&store, 16);

    // Who does the biggest hub point at?
    let hub = 0u64; // RMAT concentrates mass on low IDs
    let neighbors = q.neighbors(hub);
    println!(
        "\nneighbors({hub}): {} out-edges, e.g. {:?}",
        neighbors.len(),
        &neighbors[..5.min(neighbors.len())]
    );

    // The hub's egonet: its 1-hop community.
    let (members, edges) = q.egonet(hub);
    println!(
        "egonet({hub}): {} members, {} internal edges (density {:.2})",
        members.len(),
        edges.len(),
        edges.len() as f64 / members.len().max(1) as f64
    );

    // An induced subgraph over an ID range (e.g. one crawl shard).
    let shard: BTreeSet<u64> = (1000..1200).collect();
    let sub = q.induced_subgraph(&shard);
    println!("induced([1000,1200)): {} internal edges", sub.len());

    // Cross-edges between two vertex sets.
    let a: BTreeSet<u64> = (0..500).collect();
    let b: BTreeSet<u64> = (500..2000).collect();
    let crossing = q.cross_edges(&a, &b);
    println!("cross-edges([0,500) -> [500,2000)): {}", crossing.len());

    println!(
        "\nquery session: simulated {}, {} page fetches over PCI-E for {} \
         stored pages, cache hit rate {:.0}% — a full sweep would have \
         streamed every page once per query",
        q.elapsed(),
        q.pages_fetched(),
        store.num_pages(),
        q.cache_hit_rate() * 100.0,
    );
}
