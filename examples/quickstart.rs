//! Quickstart: build a graph, convert it to the slotted page format, and
//! run BFS and PageRank through the GTS engine on one simulated GPU.
//!
//! ```sh
//! cargo run --release -p gts-examples --example quickstart
//! ```

use gts_core::engine::Gts;
use gts_core::programs::{Bfs, PageRank};
use gts_core::Telemetry;
use gts_graph::generate::rmat;
use gts_graph::{reference, Csr};
use gts_storage::{build_graph_store, PageFormatConfig};

fn main() {
    // 1. A synthetic power-law graph: RMAT scale 14 (16k vertices, 262k
    //    edges), the same generator family as the paper's datasets.
    let graph = rmat(14);
    println!(
        "graph: {} vertices, {} edges (density {:.1})",
        graph.num_vertices,
        graph.num_edges(),
        graph.density()
    );

    // 2. Convert to the out-of-core slotted page format (Sec. 2): 64 KiB
    //    pages, (2,2)-byte physical IDs.
    let store = build_graph_store(&graph, PageFormatConfig::small_default())
        .expect("graph fits the (2,2) format");
    println!(
        "store: {} small pages, {} large pages, {} B topology",
        store.small_pids().len(),
        store.large_pids().len(),
        store.topology_bytes()
    );

    // 3. Run BFS: only pages containing frontier vertices are streamed
    //    each level (Sec. 3.3). Span recording is on so step 6 can export
    //    the copy/kernel timeline.
    let engine = Gts::builder()
        .telemetry(Telemetry::with_spans())
        .build()
        .expect("default config is valid");
    let mut bfs = Bfs::new(store.num_vertices(), 0);
    let report = engine.run(&store, &mut bfs).expect("bfs");
    let reached = bfs.levels().iter().filter(|&&l| l != u16::MAX).count();
    println!(
        "BFS:      {} levels, {} vertices reached, simulated {} ({:.0} MTEPS), \
         {} pages streamed, {} cache hits",
        report.sweeps,
        reached,
        report.elapsed,
        report.mteps(),
        report.pages_streamed,
        report.cache_hits
    );

    // 4. Run ten PageRank iterations: the whole topology streams once per
    //    iteration while nextPR stays in device memory (Sec. 3.1).
    let mut pr = PageRank::new(store.num_vertices(), 10);
    let report = engine.run(&store, &mut pr).expect("pagerank");
    let mut top: Vec<(usize, f32)> = pr.ranks().iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "PageRank: 10 iterations, simulated {}, top vertices {:?}",
        report.elapsed,
        &top[..3.min(top.len())]
    );

    // 5. Everything is validated against simple sequential references.
    let csr = Csr::from_edge_list(&graph);
    assert_eq!(bfs.levels_u32(), reference::bfs(&csr, 0));
    println!("verified: engine BFS equals the sequential reference");

    // 6. The run left a full trace in the telemetry handle: export it as
    //    chrome://tracing JSON (load in ui.perfetto.dev) — the paper's
    //    Fig. 4 timeline for your own run.
    let mut path = std::env::temp_dir();
    path.push("gts-quickstart-trace.json");
    std::fs::write(&path, engine.telemetry().to_chrome_trace()).expect("write trace");
    println!(
        "trace: {} spans exported to {}",
        engine.telemetry().span_count(),
        path.display()
    );
}
