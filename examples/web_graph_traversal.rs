//! Web-graph traversal on a high-diameter YahooWeb-like crawl: BFS
//! reachability, betweenness centrality of the crawl frontier, and a
//! comparison of the GPU page cache's effect — the traversal-heavy side of
//! the paper's evaluation (BFS-like algorithms, Sec. 3.3).
//!
//! ```sh
//! cargo run --release -p gts-examples --example web_graph_traversal
//! ```

use gts_core::engine::{Gts, GtsConfig};
use gts_core::programs::{Bc, Bfs};
use gts_graph::generate::web_like;
use gts_storage::{build_graph_store, PageFormatConfig};

fn main() {
    // A chain of 96 site clusters: sparse and high-diameter, like a real
    // crawl (the paper's YahooWeb has the same character).
    let graph = web_like(96, 700, 4, 7);
    let store = build_graph_store(&graph, PageFormatConfig::small_default()).expect("store");
    println!(
        "web-like crawl: {} pages, {} hyperlinks, density {:.1}",
        store.num_vertices(),
        store.num_edges(),
        graph.density()
    );

    // BFS with and without the GPU-side topology cache. High-diameter
    // traversals revisit pages across many levels, exactly the case the
    // cache exists for (Sec. 3.3).
    for (label, cache) in [("cache off", Some(0)), ("cache on", None)] {
        let cfg = GtsConfig {
            cache_limit_bytes: cache,
            ..GtsConfig::default()
        };
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        let report = Gts::new(cfg).run(&store, &mut bfs).expect("bfs");
        let depth = bfs
            .levels()
            .iter()
            .filter(|&&l| l != u16::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        println!(
            "BFS ({label}): depth {depth}, simulated {}, {} pages streamed, \
             hit rate {:.0}%",
            report.elapsed,
            report.pages_streamed,
            report.cache_hit_rate * 100.0
        );
    }

    // Betweenness centrality from the crawl seed: which pages carry the
    // shortest-path traffic (two-phase streamed Brandes, Appendix D).
    let mut bc = Bc::new(store.num_vertices(), 0);
    let report = Gts::new(GtsConfig::default())
        .run(&store, &mut bc)
        .expect("bc");
    let mut hubs: Vec<(usize, f32)> = bc.centrality().iter().copied().enumerate().collect();
    hubs.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\nbetweenness (single source, {} sweeps, simulated {}):",
        report.sweeps, report.elapsed
    );
    for (page, score) in hubs.iter().take(5) {
        println!("  page {page:>6}  centrality {score:.1}");
    }
    println!("\nbridge pages between clusters dominate, as expected for a chain crawl");
}
