//! Out-of-core processing: a graph whose working set exceeds GPU device
//! memory, streamed from simulated PCI-E SSDs — the paper's headline
//! scenario ("process an RMAT32 graph in a single machine"), at the
//! workspace's 1/1024 scale.
//!
//! Shows the full decision tree:
//! 1. a CuSha-style GPU-memory-only engine OOMs;
//! 2. GTS Strategy-P OOMs once WA outgrows one device;
//! 3. GTS Strategy-S over two GPUs + two SSDs finishes.
//!
//! ```sh
//! cargo run --release -p gts-examples --example out_of_core_billion_edge
//! ```

use gts_baselines::gpu_only::{GpuOnlyEngine, GpuOnlyProfile};
use gts_core::engine::{Gts, GtsConfig, StorageLocation};
use gts_core::programs::PageRank;
use gts_core::Strategy;
use gts_gpu::GpuConfig;
use gts_graph::generate::Rmat;
use gts_graph::Csr;
use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

fn main() {
    // RMAT21 here plays the paper's RMAT31 (2G vertices, 32G edges): too
    // big for the scaled device in any resident form.
    let graph = Rmat::new(21).generate();
    // 10 MiB device: PageRank WA for RMAT21 is 8.4 MiB, which plus the
    // streaming buffers exceeds one device but halves comfortably over two.
    let device = GpuConfig::titan_x().with_device_memory(10 << 20);
    println!(
        "graph: {} vertices, {} edges — stands in for the paper's RMAT31",
        graph.num_vertices,
        graph.num_edges()
    );

    // 1. GPU-memory-only engines need the whole graph resident: O.O.M.
    let csr = Csr::from_edge_list(&graph);
    let cusha = GpuOnlyEngine::new(GpuOnlyProfile::cusha(), device.clone());
    match cusha.run_pagerank(&csr, 10) {
        Err(e) => println!("CuSha-style engine: {e}"),
        Ok(_) => unreachable!("graph cannot fit in device memory"),
    }

    // 2. Slotted pages on SSD + GTS. Strategy-P replicates the full WA per
    //    GPU — too large here.
    let store = build_graph_store(
        &graph,
        PageFormatConfig::new(PhysicalIdConfig::TRILLION, 64 * 1024),
    )
    .expect("(3,3) format holds the graph");
    println!(
        "store: {} pages on 2 simulated SSDs ({} MiB topology)",
        store.num_pages(),
        store.topology_bytes() >> 20
    );
    let p_cfg = GtsConfig {
        num_gpus: 2,
        strategy: Strategy::Performance,
        storage: StorageLocation::Ssds(2),
        mmbuf_percent: 20,
        gpu: device.clone(),
        ..GtsConfig::default()
    };
    let mut pr = PageRank::new(store.num_vertices(), 10);
    match Gts::new(p_cfg).run(&store, &mut pr) {
        Err(e) => println!("GTS Strategy-P: {e}"),
        Ok(_) => unreachable!("full WA replica cannot fit"),
    }

    // 3. Strategy-S partitions WA across the two GPUs and broadcasts the
    //    page stream: capacity scales with the number of GPUs (Sec. 4.2).
    let s_cfg = GtsConfig {
        num_gpus: 2,
        strategy: Strategy::Scalability,
        storage: StorageLocation::Ssds(2),
        mmbuf_percent: 20,
        gpu: device,
        ..GtsConfig::default()
    };
    let mut pr = PageRank::new(store.num_vertices(), 10);
    let report = Gts::new(s_cfg)
        .run(&store, &mut pr)
        .expect("Strategy-S fits");
    println!(
        "GTS Strategy-S: 10 PageRank iterations in simulated {} \
         ({} pages streamed, {:.1} GiB over PCI-E)",
        report.elapsed,
        report.pages_streamed,
        report.total_bytes_h2d() as f64 / (1u64 << 30) as f64
    );
    let sum: f64 = pr.ranks().iter().map(|&r| r as f64).sum();
    println!("rank mass retained: {sum:.4} (dangling vertices leak, as in the paper's kernel)");
}
