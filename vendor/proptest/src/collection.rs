//! Collection strategies (the subset of `proptest::collection` in use).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for `Vec`s whose length is drawn from a range and whose
/// elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A `Vec` of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
