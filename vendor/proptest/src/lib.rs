//! Minimal, self-contained property-testing library with a `proptest`-shaped
//! API.
//!
//! The workspace's property tests were written against the real `proptest`
//! crate, but this repository must build with no network access, so this
//! vendored crate implements the subset of the API those tests use:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `boxed`
//! * integer and float range strategies, tuple strategies, [`Just`]
//! * [`collection::vec`], [`prop_oneof!`], [`proptest!`],
//!   [`prop_assert!`], [`prop_assert_eq!`], [`ProptestConfig`]
//!
//! Differences from the real crate: values are sampled from a deterministic
//! per-test PRNG (seeded from the test's module path and name, so failures
//! reproduce across runs), and there is **no shrinking** — a failing case
//! reports the case number and seed instead of a minimised input.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Deterministic xoshiro256** generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Expand a 64-bit seed into generator state via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi]`, both bounds included, computed in u128
    /// so the full u64 domain works.
    fn uniform_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = (hi as u128) - (lo as u128) + 1;
        if span == 1u128 << 64 {
            return self.next_u64();
        }
        // Multiply-shift; the slight modulo bias is irrelevant for test
        // data generation.
        let x = self.next_u64() as u128;
        lo + ((x * span) >> 64) as u64
    }
}

/// A recipe for generating values of `Self::Value`.
///
/// Object safe; combinator methods are `Self: Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (what [`prop_oneof!`] stores).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice between strategies (what [`prop_oneof!`] builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.uniform_inclusive(0, self.options.len() as u64 - 1) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.uniform_inclusive(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.uniform_inclusive(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard the half-open bound against rounding.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert!` inside a test case body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the cases of one property test (used by the [`proptest!`]
/// expansion; not part of the user-facing API).
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    base_seed: u64,
}

impl TestRunner {
    /// Runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // FNV-1a over the test path gives each test its own stream while
        // staying stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            name,
            base_seed: h,
        }
    }

    /// How many cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The deterministic generator for case `case`.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::seed_from_u64(self.base_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Human-readable identification of the failing test for panic output.
    pub fn describe(&self, case: u32) -> String {
        format!(
            "test `{}`, case {} of {} (seed {:#x})",
            self.name,
            case,
            self.config.cases,
            self.base_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies and runs the body for
/// every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::TestRunner::new(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("property failed: {}\n({})", e, runner.describe(case));
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failures abort only the current case
/// with a descriptive message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{collection, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = (5u32..17).sample(&mut rng);
            assert!((5..17).contains(&x));
            let y = (0u8..=255).sample(&mut rng);
            let _ = y; // full domain: only checks no panic
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = collection::vec(0u64..10, 3..7).sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_feeds_outer_value_inward() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = (1u32..50).prop_flat_map(|n| (0..n, Just(n)).prop_map(|(x, n)| (x, n)));
        for _ in 0..500 {
            let (x, n) = s.sample(&mut rng);
            assert!(x < n);
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u32..10, b in 0u32..10) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = collection::vec(0u64..1000, 0..50);
        let mut r1 = TestRng::seed_from_u64(9);
        let mut r2 = TestRng::seed_from_u64(9);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
