//! Host parallelism must be invisible in every observable output: reports,
//! counters, and chrome traces are byte-identical for any `host_threads`
//! value (ISSUE: real wall-clock may improve, simulated numbers may not).

use gts_core::engine::{Gts, GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, GtsProgram, PageRank};
use gts_core::Telemetry;
use gts_graph::generate::rmat;
use gts_storage::{build_graph_store, GraphStore, PageFormatConfig, PhysicalIdConfig};

fn store() -> GraphStore {
    build_graph_store(
        &rmat(11),
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 2048),
    )
    .unwrap()
}

/// Run `mk_prog` under `host_threads` and return every observable artifact
/// as strings: the report JSON, the full counter map, and the chrome trace.
fn artifacts(
    s: &GraphStore,
    host_threads: usize,
    mk_prog: impl Fn(u64) -> Box<dyn GtsProgram>,
) -> (String, String, String) {
    let cfg = GtsConfig::builder()
        .storage(StorageLocation::Ssds(2))
        .num_streams(8)
        .host_threads(host_threads)
        .build()
        .unwrap();
    let engine = Gts::builder()
        .config(cfg)
        .telemetry(Telemetry::with_spans())
        .build()
        .unwrap();
    let mut prog = mk_prog(s.num_vertices());
    let report = engine.run(s, prog.as_mut()).unwrap();
    let counters = format!("{:?}", engine.telemetry().counters());
    (
        report.to_json(),
        counters,
        engine.telemetry().to_chrome_trace(),
    )
}

#[test]
fn pagerank_artifacts_are_byte_identical_across_thread_counts() {
    // PageRank opts into the shared (parallel) kernel path; its fixed-point
    // accumulator makes the scatter order invisible.
    let s = store();
    let serial = artifacts(&s, 1, |n| Box::new(PageRank::new(n, 5)));
    for threads in [2, 4] {
        let par = artifacts(&s, threads, |n| Box::new(PageRank::new(n, 5)));
        assert_eq!(par.0, serial.0, "report JSON, threads={threads}");
        assert_eq!(par.1, serial.1, "counters, threads={threads}");
        assert_eq!(par.2, serial.2, "chrome trace, threads={threads}");
    }
}

#[test]
fn bfs_artifacts_are_byte_identical_across_thread_counts() {
    // BFS has no shared kernel (claim order matters), so every thread
    // count must take the serial fallback — trivially identical, but this
    // pins the fallback in place.
    let s = store();
    let serial = artifacts(&s, 1, |n| Box::new(Bfs::new(n, 0)));
    let par = artifacts(&s, 4, |n| Box::new(Bfs::new(n, 0)));
    assert_eq!(par, serial);
}

#[test]
fn pagerank_results_match_serial_exactly() {
    // Not just the artifacts: the rank vector itself is bit-identical.
    let s = store();
    let run = |threads| {
        let cfg = GtsConfig::builder().host_threads(threads).build().unwrap();
        let mut pr = PageRank::new(s.num_vertices(), 5);
        Gts::new(cfg).run(&s, &mut pr).unwrap();
        pr.ranks().to_vec()
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            run(threads).iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            serial.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            "threads={threads}"
        );
    }
}
