//! Golden-report regression fixtures.
//!
//! The engine's reports, counter registry, and chrome traces for a fixed
//! set of configurations are checked into `tests/golden/` byte-for-byte.
//! Any refactor of the sweep stages that changes a single simulated
//! number, counter, or span shows up as a diff here — the pipeline must
//! be behavior-preserving. (The fixtures were last blessed when the page
//! format gained its checksum trailer, which shrank per-page capacity
//! and therefore shifted every page count and timing.)
//!
//! To regenerate after an *intentional* timing-model change:
//!
//! ```text
//! GTS_BLESS=1 cargo test -p gts-integration --test golden_report
//! ```

use gts_core::engine::{Gts, GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, GtsProgram, PageRank};
use gts_core::{Strategy, Telemetry};
use gts_gpu::GpuConfig;
use gts_graph::generate::rmat;
use gts_storage::{build_graph_store, GraphStore, PageFormatConfig, PhysicalIdConfig};
use gts_telemetry::keys;
use std::path::PathBuf;

/// A named factory for fresh program instances (each run needs its own).
type ProgramFactory<'a> = (&'a str, Box<dyn Fn() -> Box<dyn GtsProgram>>);

fn store() -> GraphStore {
    build_graph_store(
        &rmat(8),
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
    )
    .unwrap()
}

/// The golden configurations: the paper's single-GPU and multi-GPU
/// Strategy-P/S settings, in-memory and SSD-backed.
fn golden_configs() -> Vec<(&'static str, GtsConfig)> {
    vec![
        ("1gpu_mem", GtsConfig::default()),
        (
            "1gpu_ssd",
            GtsConfig {
                storage: StorageLocation::Ssds(2),
                ..GtsConfig::default()
            },
        ),
        (
            "4gpu_p_ssd",
            GtsConfig {
                num_gpus: 4,
                strategy: Strategy::Performance,
                storage: StorageLocation::Ssds(2),
                ..GtsConfig::default()
            },
        ),
        (
            "4gpu_s_ssd",
            GtsConfig {
                num_gpus: 4,
                strategy: Strategy::Scalability,
                storage: StorageLocation::Ssds(2),
                ..GtsConfig::default()
            },
        ),
    ]
}

fn golden_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/integration; fixtures live in tests/golden.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn counters_json(tel: &Telemetry) -> String {
    let mut out = String::from("{\n");
    let counters = tel.counters();
    let mut first = true;
    for (k, v) in &counters {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{k}\": {v}"));
    }
    out.push_str("\n}\n");
    out
}

fn check_or_bless(name: &str, got: &str, mismatches: &mut Vec<String>) {
    let path = golden_dir().join(name);
    if std::env::var_os("GTS_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with GTS_BLESS=1 to create it",
            path.display()
        )
    });
    if got != want {
        mismatches.push(name.to_string());
    }
}

#[test]
fn reports_counters_and_traces_match_pre_refactor_goldens() {
    let store = store();
    let mut mismatches = Vec::new();
    for (name, cfg) in golden_configs() {
        // Both execution modes: BFS exercises the traversal path
        // (nextPIDSet, frontier bitmaps, final WA write-back), PageRank the
        // sweep path (per-sweep WA broadcast + write-back).
        let runs: Vec<ProgramFactory> = vec![
            (
                "bfs",
                Box::new({
                    let n = store.num_vertices();
                    move || Box::new(Bfs::new(n, 0))
                }),
            ),
            (
                "pagerank",
                Box::new({
                    let n = store.num_vertices();
                    move || Box::new(PageRank::new(n, 3))
                }),
            ),
        ];
        for (alg, mk) in runs {
            let engine = Gts::builder()
                .config(cfg.clone())
                .telemetry(Telemetry::with_spans())
                .build()
                .unwrap();
            let mut prog = mk();
            let report = engine.run(&store, prog.as_mut()).unwrap();
            let tel = engine.telemetry();
            check_or_bless(
                &format!("{name}_{alg}.report.json"),
                &format!("{}\n", report.to_json()),
                &mut mismatches,
            );
            check_or_bless(
                &format!("{name}_{alg}.counters.json"),
                &counters_json(tel),
                &mut mismatches,
            );
            check_or_bless(
                &format!("{name}_{alg}.trace.json"),
                &tel.to_chrome_trace(),
                &mut mismatches,
            );
        }
    }
    assert!(
        mismatches.is_empty(),
        "outputs diverged from pre-refactor goldens: {mismatches:?}\n\
         (if the timing model changed intentionally, re-bless with GTS_BLESS=1)"
    );
}

/// The blessed degraded run: a 4-GPU Strategy-P configuration whose
/// replicated WA cannot fit any single GPU, so the engine records a
/// `degrade.events` step-down to Strategy-S and completes anyway. The
/// fixture pins the degraded timeline — the step-down must stay visible
/// (and deterministic) in report, counters, and trace.
#[test]
fn degraded_oom_step_down_matches_golden() {
    let store = store();
    let v = store.num_vertices();
    let wa = gts_core::attrs::AlgorithmKind::PageRank.wa_bytes(v);
    let page = store.cfg().page_size as u64;
    let streams = 16u64;
    let max_sp_vertices = page / 14; // VID(6) + OFF(4) + ADJLIST_SZ(4)
    let buffers = streams * page * 2 + streams * max_sp_vertices * 4 + store.rvt().memory_bytes();
    // Room for the streaming buffers plus half the WA: Strategy-P's full
    // replica can never fit, a quarter split under Strategy-S can.
    let cfg = GtsConfig {
        num_gpus: 4,
        strategy: Strategy::Performance,
        storage: StorageLocation::Ssds(2),
        gpu: GpuConfig::titan_x().with_device_memory(buffers + wa / 2),
        ..GtsConfig::default()
    };
    let engine = Gts::builder()
        .config(cfg)
        .telemetry(Telemetry::with_spans())
        .build()
        .unwrap();
    let mut pr = PageRank::new(v, 3);
    let report = engine
        .run(&store, &mut pr)
        .expect("step-down must rescue the run");
    let tel = engine.telemetry();
    assert!(
        tel.counter(keys::DEGRADE_EVENTS) >= 1,
        "no step-down recorded"
    );

    let mut mismatches = Vec::new();
    check_or_bless(
        "degraded_4gpu_p_ssd_pagerank.report.json",
        &format!("{}\n", report.to_json()),
        &mut mismatches,
    );
    check_or_bless(
        "degraded_4gpu_p_ssd_pagerank.counters.json",
        &counters_json(tel),
        &mut mismatches,
    );
    check_or_bless(
        "degraded_4gpu_p_ssd_pagerank.trace.json",
        &tel.to_chrome_trace(),
        &mut mismatches,
    );
    assert!(
        mismatches.is_empty(),
        "degraded run diverged from its blessed fixture: {mismatches:?}\n\
         (if the degradation ladder changed intentionally, re-bless with GTS_BLESS=1)"
    );
}
