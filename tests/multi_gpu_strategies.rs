//! Multi-GPU behaviour: Strategy-P and Strategy-S (paper Sec. 4) across
//! GPU counts — functional equivalence, capacity scaling, speedup shapes,
//! and the peer-to-peer synchronisation advantage.

use gts_core::engine::{EngineError, Gts, GtsConfig};
use gts_core::programs::{Bfs, Cc, PageRank, Sssp};
use gts_core::Strategy;
use gts_gpu::GpuConfig;
use gts_graph::generate::rmat;
use gts_graph::{reference, Csr};
use gts_storage::{build_graph_store, GraphStore, PageFormatConfig, PhysicalIdConfig};

fn store() -> GraphStore {
    build_graph_store(
        &rmat(12),
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 4096),
    )
    .unwrap()
}

#[test]
fn every_algorithm_is_strategy_and_gpu_count_invariant() {
    let graph = rmat(11);
    let store = build_graph_store(
        &graph,
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 2048),
    )
    .unwrap();
    let csr = Csr::from_edge_list(&graph);
    let want_bfs = reference::bfs(&csr, 0);
    let want_sssp = reference::sssp(&csr, 0);
    let want_cc = reference::connected_components(&csr);
    for strategy in [Strategy::Performance, Strategy::Scalability] {
        for gpus in [1usize, 2, 3, 8] {
            let cfg = GtsConfig {
                num_gpus: gpus,
                strategy,
                ..GtsConfig::default()
            };
            let mut bfs = Bfs::new(store.num_vertices(), 0);
            Gts::new(cfg.clone()).run(&store, &mut bfs).unwrap();
            assert_eq!(bfs.levels_u32(), want_bfs, "{strategy:?}/{gpus} BFS");
            let mut sssp = Sssp::new(store.num_vertices(), 0);
            Gts::new(cfg.clone()).run(&store, &mut sssp).unwrap();
            assert_eq!(sssp.distances(), &want_sssp[..], "{strategy:?}/{gpus} SSSP");
            let mut cc = Cc::new(store.num_vertices());
            Gts::new(cfg).run(&store, &mut cc).unwrap();
            assert_eq!(cc.labels_u32(), want_cc, "{strategy:?}/{gpus} CC");
        }
    }
}

#[test]
fn strategy_p_pagerank_speedup_is_fairly_linear() {
    // Sec. 4.1: "fairly linear parallel speedup with respect to the number
    // of GPUs … as long as the capability of data streaming is sufficient".
    let s = store();
    let elapsed = |gpus| {
        let cfg = GtsConfig {
            num_gpus: gpus,
            strategy: Strategy::Performance,
            cache_limit_bytes: Some(0),
            ..GtsConfig::default()
        };
        let mut pr = PageRank::new(s.num_vertices(), 5);
        Gts::new(cfg)
            .run(&s, &mut pr)
            .unwrap()
            .elapsed
            .as_secs_f64()
    };
    let one = elapsed(1);
    let two = elapsed(2);
    let four = elapsed(4);
    assert!(one / two > 1.5, "2-GPU speedup {:.2} too low", one / two);
    assert!(one / four > 2.5, "4-GPU speedup {:.2} too low", one / four);
}

#[test]
fn strategy_s_throughput_does_not_scale_but_capacity_does() {
    // Sec. 4.2: "although increasing the number of GPUs, the performance
    // of graph processing itself does not change".
    let s = store();
    let elapsed = |gpus| {
        let cfg = GtsConfig {
            num_gpus: gpus,
            strategy: Strategy::Scalability,
            cache_limit_bytes: Some(0),
            ..GtsConfig::default()
        };
        let mut pr = PageRank::new(s.num_vertices(), 5);
        Gts::new(cfg)
            .run(&s, &mut pr)
            .unwrap()
            .elapsed
            .as_secs_f64()
    };
    let one = elapsed(1);
    let four = elapsed(4);
    assert!(
        (four / one) > 0.8 && (four / one) < 1.3,
        "Strategy-S elapsed should be roughly flat: 1 GPU {one}, 4 GPUs {four}"
    );
}

#[test]
fn capacity_scales_linearly_with_gpus_under_strategy_s() {
    // Find a device size where 1 GPU OOMs but 4 GPUs fit.
    let s = store();
    let wa = gts_core::attrs::AlgorithmKind::ConnectedComponents.wa_bytes(s.num_vertices());
    let streams = 16u64;
    let page = s.cfg().page_size as u64;
    let buffers = streams * page * 2 + s.rvt().memory_bytes();
    let capacity = buffers + wa / 2;
    let run = |gpus| {
        let cfg = GtsConfig {
            num_gpus: gpus,
            strategy: Strategy::Scalability,
            gpu: GpuConfig::titan_x().with_device_memory(capacity),
            // Fail fast: this test pins the raw capacity boundary, not the
            // engine's degraded-mode rescue (covered by its own tests).
            degrade_on_oom: false,
            ..GtsConfig::default()
        };
        let mut cc = Cc::new(s.num_vertices());
        Gts::new(cfg).run(&s, &mut cc).map(|_| ())
    };
    assert!(matches!(run(1), Err(EngineError::DeviceOom(_))));
    run(4).expect("4 GPUs split WA into quarters");
}

#[test]
fn p2p_sync_beats_naive_sync_and_gap_grows_with_gpus() {
    // Sec. 4.1: peer-to-peer merging "largely reduces such synchronization
    // overhead" versus N direct copies.
    let s = store();
    let elapsed = |gpus, p2p| {
        let cfg = GtsConfig {
            num_gpus: gpus,
            strategy: Strategy::Performance,
            p2p_sync: p2p,
            ..GtsConfig::default()
        };
        let mut pr = PageRank::new(s.num_vertices(), 5);
        Gts::new(cfg)
            .run(&s, &mut pr)
            .unwrap()
            .elapsed
            .as_secs_f64()
    };
    // At N = 2 both paths are two serial transfers (P2P merge + one
    // write-back vs two write-backs), so P2P only breaks even; its win
    // comes from merging in parallel across sources as N grows — which is
    // exactly the paper's "as N increases" framing.
    let adv2 = elapsed(2, false) / elapsed(2, true);
    let adv4 = elapsed(4, false) / elapsed(4, true);
    let adv8 = elapsed(8, false) / elapsed(8, true);
    assert!(adv2 > 0.9, "P2P must be near parity at 2 GPUs ({adv2:.3})");
    assert!(adv4 > 1.0, "P2P must win at 4 GPUs ({adv4:.3})");
    assert!(
        adv8 > adv4,
        "P2P advantage must grow with N ({adv4:.3} → {adv8:.3})"
    );
}

#[test]
fn page_assignment_is_balanced_under_strategy_p() {
    let s = store();
    let cfg = GtsConfig {
        num_gpus: 4,
        strategy: Strategy::Performance,
        cache_limit_bytes: Some(0),
        ..GtsConfig::default()
    };
    let mut pr = PageRank::new(s.num_vertices(), 1);
    let report = Gts::new(cfg).run(&s, &mut pr).unwrap();
    let bytes: Vec<u64> = report.per_gpu.iter().map(|g| g.bytes_h2d).collect();
    let max = *bytes.iter().max().unwrap() as f64;
    let min = *bytes.iter().min().unwrap() as f64;
    assert!(
        max / min < 1.3,
        "h(j) = j mod N must balance the stream: {bytes:?}"
    );
}
