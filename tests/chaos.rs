//! Chaos property tests for the fault-injection subsystem.
//!
//! The contract under test: for ANY seeded [`FaultConfig`], a run either
//! completes with results **byte-identical** to the fault-free run (the
//! injected faults visible only in counters, spans, and added simulated
//! time), or fails with a **typed** [`EngineError`] — never a panic, and
//! never silently wrong ranks/levels. Either way the outcome must be
//! identical at every `--host-threads` value, because all fault decisions
//! are drawn from the serial accounting phase.
//!
//! Like the repo's other sampling-based property tests, this sweeps a
//! fixed seed set rather than pulling in a property-testing framework.

use gts_core::engine::{EngineError, Gts, GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, PageRank};
use gts_core::{FaultConfig, Strategy, Telemetry};
use gts_graph::generate::rmat;
use gts_sim::SimDuration;
use gts_storage::{build_graph_store, GraphStore, PageFormatConfig, PhysicalIdConfig};
use gts_telemetry::keys;

fn store() -> GraphStore {
    build_graph_store(
        &rmat(9),
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
    )
    .unwrap()
}

/// The 4-GPU Strategy-P SSD configuration the chaos CI job sweeps: every
/// fault domain is exercised (striped drives, H2D copies, kernel
/// launches) and the MMBuf is disabled so each sweep really re-reads.
fn chaos_config(host_threads: usize, faults: Option<FaultConfig>) -> GtsConfig {
    GtsConfig {
        num_gpus: 4,
        strategy: Strategy::Performance,
        storage: StorageLocation::Ssds(2),
        mmbuf_percent: 0,
        cache_limit_bytes: Some(0),
        host_threads,
        faults,
        ..GtsConfig::default()
    }
}

/// One observed run: the program results plus everything the engine
/// reported, so outcomes can be compared byte-for-byte.
struct Observed {
    result: Result<String, EngineError>,
    ranks: Vec<f64>,
    counters: std::collections::BTreeMap<String, u64>,
    elapsed_ns: u64,
}

fn observe(store: &GraphStore, host_threads: usize, faults: Option<FaultConfig>) -> Observed {
    let engine = Gts::builder()
        .config(chaos_config(host_threads, faults))
        .telemetry(Telemetry::with_spans())
        .build()
        .unwrap();
    let mut pr = PageRank::new(store.num_vertices(), 3);
    let result = engine.run(store, &mut pr).map(|r| r.to_json());
    let tel = engine.telemetry();
    Observed {
        result,
        ranks: pr.ranks().iter().map(|&r| f64::from(r)).collect(),
        counters: tel.counters(),
        elapsed_ns: tel.counter(keys::RUN_ELAPSED_NS),
    }
}

/// Any seeded plan at the default (recoverable) rates completes with
/// results identical to the fault-free run, faults visible only in the
/// counters and the added simulated time.
#[test]
fn recoverable_fault_seeds_preserve_results_exactly() {
    let store = store();
    let clean = observe(&store, 1, None);
    let clean_json = clean.result.expect("fault-free run completes");
    let mut recovered_something = false;
    for seed in [1u64, 2, 3, 0x5EED, 0xFA157, 0xDEAD_BEEF] {
        let faulty = observe(&store, 1, Some(FaultConfig::with_seed(seed)));
        let json = faulty
            .result
            .unwrap_or_else(|e| panic!("seed {seed}: default rates must recover, got {e}"));
        assert_eq!(faulty.ranks, clean.ranks, "seed {seed}: ranks diverged");
        assert!(
            faulty.elapsed_ns >= clean.elapsed_ns,
            "seed {seed}: recovery cannot be free"
        );
        let retries = faulty
            .counters
            .iter()
            .filter(|(k, _)| k.contains("retries") || k.contains("faults"))
            .map(|(_, v)| v)
            .sum::<u64>();
        if retries > 0 {
            recovered_something = true;
            assert_ne!(json, clean_json, "seed {seed}: retries must cost time");
        }
    }
    assert!(
        recovered_something,
        "seed set too quiet to exercise recovery — pick livelier seeds"
    );
}

/// Hostile plans (high rates, no retry budget) must fail with a *typed*
/// error, not a panic and not silently wrong results; gentler plans must
/// recover. Whatever the outcome, it is identical at 1 and 4 host
/// threads: fault draws live only in the serial accounting phase.
#[test]
fn any_seed_recovers_or_fails_typed_and_host_threads_never_matter() {
    let store = store();
    let clean = observe(&store, 1, None);
    let mut failures = 0u32;
    for seed in 0u64..12 {
        // Escalate rates with the seed index so the sweep crosses the
        // recover/fail boundary instead of clustering on one side.
        let cfg = FaultConfig {
            read_error_ppm: 30_000 * (seed as u32 + 1),
            corrupt_page_ppm: 20_000 * (seed as u32 + 1),
            max_retries: (4u32).saturating_sub(seed as u32 / 3),
            quarantine_after: 2,
            backoff: SimDuration::from_micros(50),
            ..FaultConfig::with_seed(seed)
        };
        let a = observe(&store, 1, Some(cfg.clone()));
        let b = observe(&store, 4, Some(cfg));
        match (&a.result, &b.result) {
            (Ok(ja), Ok(jb)) => {
                assert_eq!(ja, jb, "seed {seed}: report differs across host threads");
                assert_eq!(a.ranks, clean.ranks, "seed {seed}: silently wrong ranks");
            }
            (Err(ea), Err(eb)) => {
                failures += 1;
                assert_eq!(
                    ea.to_string(),
                    eb.to_string(),
                    "seed {seed}: error differs across host threads"
                );
                // Failed runs still flush telemetry (partial trace support).
                assert!(a.counters.iter().any(|(k, _)| k == keys::RUN_GPUS));
            }
            (x, y) => panic!("seed {seed}: outcome depends on host threads: {x:?} vs {y:?}"),
        }
        assert_eq!(
            a.counters, b.counters,
            "seed {seed}: counters differ across host threads"
        );
    }
    assert!(
        failures > 0,
        "escalating rates never produced a typed failure — the failing \
         half of the property is untested"
    );
}

/// BFS exercises the traversal path (frontier bitmaps, nextPIDSet) under
/// the same contract: recoverable faults leave levels untouched.
#[test]
fn bfs_results_survive_recoverable_faults() {
    let store = store();
    let run = |faults: Option<FaultConfig>| {
        let engine = Gts::builder()
            .config(chaos_config(2, faults))
            .build()
            .unwrap();
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        engine.run(&store, &mut bfs).unwrap();
        bfs.levels().to_vec()
    };
    let clean = run(None);
    for seed in [7u64, 0xB0B] {
        assert_eq!(
            run(Some(FaultConfig::with_seed(seed))),
            clean,
            "seed {seed}"
        );
    }
}
