//! The out-of-core pipeline across crates: graphs streamed from simulated
//! secondary storage through MMBuf to the GPUs, with correct results and
//! sensible timing relationships.

use gts_core::engine::{Gts, GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, PageRank};
use gts_graph::generate::rmat;
use gts_graph::{reference, Csr};
use gts_sim::SimDuration;
use gts_storage::{build_graph_store, GraphStore, PageFormatConfig, PhysicalIdConfig};

fn store() -> GraphStore {
    build_graph_store(
        &rmat(12),
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 4096),
    )
    .unwrap()
}

fn pr_elapsed(store: &GraphStore, cfg: GtsConfig) -> SimDuration {
    let mut pr = PageRank::new(store.num_vertices(), 3);
    Gts::new(cfg).run(store, &mut pr).unwrap().elapsed
}

#[test]
fn results_identical_across_storage_backends() {
    let graph = rmat(12);
    let store = build_graph_store(
        &graph,
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 4096),
    )
    .unwrap();
    let want = reference::bfs(&Csr::from_edge_list(&graph), 0);
    for storage in [
        StorageLocation::InMemory,
        StorageLocation::Ssds(1),
        StorageLocation::Ssds(4),
        StorageLocation::Hdds(2),
    ] {
        let cfg = GtsConfig {
            storage,
            mmbuf_percent: 10,
            ..GtsConfig::default()
        };
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        Gts::new(cfg).run(&store, &mut bfs).unwrap();
        assert_eq!(bfs.levels_u32(), want, "{storage:?}");
    }
}

#[test]
fn storage_hierarchy_ordering_holds() {
    let s = store();
    let cfg = |storage| GtsConfig {
        storage,
        mmbuf_percent: 0,
        cache_limit_bytes: Some(0),
        ..GtsConfig::default()
    };
    let memory = pr_elapsed(&s, cfg(StorageLocation::InMemory));
    let ssd2 = pr_elapsed(&s, cfg(StorageLocation::Ssds(2)));
    let ssd1 = pr_elapsed(&s, cfg(StorageLocation::Ssds(1)));
    let hdd2 = pr_elapsed(&s, cfg(StorageLocation::Hdds(2)));
    assert!(memory <= ssd2, "{memory} vs {ssd2}");
    assert!(ssd2 < ssd1, "{ssd2} vs {ssd1}");
    assert!(ssd1 < hdd2, "{ssd1} vs {hdd2}");
    assert!(
        hdd2.as_secs_f64() > 5.0 * ssd1.as_secs_f64(),
        "HDDs must be dramatically slower (Fig. 9)"
    );
}

#[test]
fn more_ssds_help_when_io_bound() {
    let s = store();
    let cfg = |n| GtsConfig {
        storage: StorageLocation::Ssds(n),
        mmbuf_percent: 0,
        cache_limit_bytes: Some(0),
        ..GtsConfig::default()
    };
    let one = pr_elapsed(&s, cfg(1));
    let two = pr_elapsed(&s, cfg(2));
    assert!(two < one, "striping must increase I/O bandwidth");
}

#[test]
fn mmbuf_absorbs_repeat_fetches() {
    let s = store();
    let run = |percent| {
        let cfg = GtsConfig {
            storage: StorageLocation::Hdds(1),
            mmbuf_percent: percent,
            cache_limit_bytes: Some(0),
            ..GtsConfig::default()
        };
        pr_elapsed(&s, cfg)
    };
    // PageRank revisits every page each iteration: a full-size MMBuf turns
    // iterations 2..n into memory reads.
    let without = run(0);
    let with = run(100);
    assert!(
        with.as_secs_f64() < without.as_secs_f64() * 0.6,
        "MMBuf must absorb most re-reads: {with} vs {without}"
    );
}

#[test]
fn bfs_streams_only_frontier_pages() {
    // A line graph: each level touches one page's worth of vertices; the
    // engine must not stream the whole store per level.
    let n: u32 = 4096;
    let graph = gts_graph::EdgeList::new(n, (0..n - 1).map(|i| (i, i + 1)).collect());
    let store = build_graph_store(
        &graph,
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
    )
    .unwrap();
    let cfg = GtsConfig {
        cache_limit_bytes: Some(0),
        ..GtsConfig::default()
    };
    let mut bfs = Bfs::new(store.num_vertices(), 0);
    let report = Gts::new(cfg).run(&store, &mut bfs).unwrap();
    // Each level marks at most 2 pages (the current and next run of
    // consecutive vertices); a full-broadcast engine would stream
    // pages × levels ≈ num_pages × 4095.
    // Frontier streaming touches exactly one page per level here (4096
    // streams); a full-broadcast engine would stream pages × levels.
    let worst = store.num_pages() * report.sweeps as u64;
    assert!(
        report.pages_streamed <= report.sweeps as u64,
        "streamed {} pages over {} levels (worst case {})",
        report.pages_streamed,
        report.sweeps,
        worst
    );
}
