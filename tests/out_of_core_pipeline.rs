//! The out-of-core pipeline across crates: graphs streamed from simulated
//! secondary storage through MMBuf to the GPUs, with correct results and
//! sensible timing relationships.

use gts_core::engine::{Gts, GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, PageRank};
use gts_graph::generate::rmat;
use gts_graph::{reference, Csr};
use gts_sim::SimDuration;
use gts_storage::{build_graph_store, GraphStore, PageFormatConfig, PhysicalIdConfig};

fn store() -> GraphStore {
    build_graph_store(
        &rmat(12),
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 4096),
    )
    .unwrap()
}

fn pr_elapsed(store: &GraphStore, cfg: GtsConfig) -> SimDuration {
    let mut pr = PageRank::new(store.num_vertices(), 3);
    Gts::new(cfg).run(store, &mut pr).unwrap().elapsed
}

#[test]
fn results_identical_across_storage_backends() {
    let graph = rmat(12);
    let store = build_graph_store(
        &graph,
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 4096),
    )
    .unwrap();
    let want = reference::bfs(&Csr::from_edge_list(&graph), 0);
    for storage in [
        StorageLocation::InMemory,
        StorageLocation::Ssds(1),
        StorageLocation::Ssds(4),
        StorageLocation::Hdds(2),
    ] {
        let cfg = GtsConfig {
            storage,
            mmbuf_percent: 10,
            ..GtsConfig::default()
        };
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        Gts::new(cfg).run(&store, &mut bfs).unwrap();
        assert_eq!(bfs.levels_u32(), want, "{storage:?}");
    }
}

#[test]
fn storage_hierarchy_ordering_holds() {
    let s = store();
    let cfg = |storage| GtsConfig {
        storage,
        mmbuf_percent: 0,
        cache_limit_bytes: Some(0),
        ..GtsConfig::default()
    };
    let memory = pr_elapsed(&s, cfg(StorageLocation::InMemory));
    let ssd2 = pr_elapsed(&s, cfg(StorageLocation::Ssds(2)));
    let ssd1 = pr_elapsed(&s, cfg(StorageLocation::Ssds(1)));
    let hdd2 = pr_elapsed(&s, cfg(StorageLocation::Hdds(2)));
    assert!(memory <= ssd2, "{memory} vs {ssd2}");
    assert!(ssd2 < ssd1, "{ssd2} vs {ssd1}");
    assert!(ssd1 < hdd2, "{ssd1} vs {hdd2}");
    assert!(
        hdd2.as_secs_f64() > 5.0 * ssd1.as_secs_f64(),
        "HDDs must be dramatically slower (Fig. 9)"
    );
}

#[test]
fn more_ssds_help_when_io_bound() {
    let s = store();
    let cfg = |n| GtsConfig {
        storage: StorageLocation::Ssds(n),
        mmbuf_percent: 0,
        cache_limit_bytes: Some(0),
        ..GtsConfig::default()
    };
    let one = pr_elapsed(&s, cfg(1));
    let two = pr_elapsed(&s, cfg(2));
    assert!(two < one, "striping must increase I/O bandwidth");
}

#[test]
fn mmbuf_absorbs_repeat_fetches() {
    let s = store();
    let run = |percent| {
        let cfg = GtsConfig {
            storage: StorageLocation::Hdds(1),
            mmbuf_percent: percent,
            cache_limit_bytes: Some(0),
            ..GtsConfig::default()
        };
        pr_elapsed(&s, cfg)
    };
    // PageRank revisits every page each iteration: a full-size MMBuf turns
    // iterations 2..n into memory reads.
    let without = run(0);
    let with = run(100);
    assert!(
        with.as_secs_f64() < without.as_secs_f64() * 0.6,
        "MMBuf must absorb most re-reads: {with} vs {without}"
    );
}

#[test]
fn fully_cached_pages_generate_no_storage_or_transfer_traffic() {
    // With the device cache left at its (huge) default, sweep 0 of a
    // multi-iteration PageRank cold-loads every page exactly once; every
    // later sweep must be served entirely from the GPU cache — zero SSD
    // reads, zero MMBuf lookups, zero H2D page transfers beyond sweep 0.
    let s = store();
    let cfg = GtsConfig {
        storage: StorageLocation::Ssds(1),
        mmbuf_percent: 10,
        ..GtsConfig::default()
    };
    let engine = Gts::new(cfg);
    let mut pr = PageRank::new(s.num_vertices(), 4);
    let report = engine.run(&s, &mut pr).unwrap();
    let tel = engine.telemetry();
    let pages = s.num_pages();

    // Streaming happened exactly once per page, all in sweep 0.
    assert_eq!(report.pages_streamed, pages);
    assert_eq!(
        tel.counter(gts_telemetry::keys::IO_BYTES_READ),
        pages * 4096
    );
    // MMBuf only ever saw the cold sweep (all misses, no repeat lookups).
    assert_eq!(tel.counter(gts_telemetry::keys::MMBUF_MISSES), pages);
    assert_eq!(tel.counter(gts_telemetry::keys::MMBUF_HITS), 0);
    // Sweeps 1.. ran fully out of the device cache.
    assert_eq!(report.sweeps, 4);
    for j in 1..report.sweeps {
        let swept = tel.counter(gts_telemetry::keys::sweep(
            j,
            gts_telemetry::keys::SWEEP_PAGES,
        ));
        let hits = tel.counter(gts_telemetry::keys::sweep(
            j,
            gts_telemetry::keys::SWEEP_CACHE_HITS,
        ));
        assert_eq!(swept, pages, "sweep {j} must visit every page");
        assert_eq!(hits, pages, "sweep {j} must be fully cache-resident");
    }
    assert_eq!(
        tel.counter(gts_telemetry::keys::sweep(
            0,
            gts_telemetry::keys::SWEEP_CACHE_HITS
        )),
        0,
        "sweep 0 is the cold load"
    );
}

#[test]
fn bfs_streams_only_frontier_pages() {
    // A line graph: each level touches one page's worth of vertices; the
    // engine must not stream the whole store per level.
    let n: u32 = 4096;
    let graph = gts_graph::EdgeList::new(n, (0..n - 1).map(|i| (i, i + 1)).collect());
    let store = build_graph_store(
        &graph,
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
    )
    .unwrap();
    let cfg = GtsConfig {
        cache_limit_bytes: Some(0),
        ..GtsConfig::default()
    };
    let mut bfs = Bfs::new(store.num_vertices(), 0);
    let report = Gts::new(cfg).run(&store, &mut bfs).unwrap();
    // Each level marks at most 2 pages (the current and next run of
    // consecutive vertices); a full-broadcast engine would stream
    // pages × levels ≈ num_pages × 4095.
    // Frontier streaming touches exactly one page per level here (4096
    // streams); a full-broadcast engine would stream pages × levels.
    let worst = store.num_pages() * report.sweeps as u64;
    assert!(
        report.pages_streamed <= report.sweeps as u64,
        "streamed {} pages over {} levels (worst case {})",
        report.pages_streamed,
        report.sweeps,
        worst
    );
}
