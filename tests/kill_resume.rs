//! Kill-and-resume chaos tests for crash-consistent checkpoint/restart.
//!
//! The contract under test: a run that is killed at (or during) a
//! checkpoint boundary and restarted with `resume` produces a final
//! report, counter registry, and program results **byte-identical** to
//! the same run never having crashed — at every `--host-threads` value.
//! Only the `ckpt.*` wall-clock counters are outside the contract (they
//! measure real snapshot I/O, not simulated work), so comparisons drop
//! them. A snapshot torn mid-write must be detected by its checksum and
//! the previous snapshot used instead. Watchdog deadlines must surface
//! as typed [`EngineError::DeadlineExceeded`] after flushing a final
//! checkpoint and the telemetry trace — never a panic, never a hang.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use gts_ckpt::{CkptError, CkptStore};
use gts_core::engine::{CheckpointConfig, EngineError, Gts, GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, PageRank};
use gts_core::{CrashPoint, FaultConfig, Strategy, Telemetry};
use gts_graph::generate::rmat;
use gts_storage::{build_graph_store, GraphStore, PageFormatConfig, PhysicalIdConfig};

fn store() -> GraphStore {
    build_graph_store(
        &rmat(9),
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
    )
    .unwrap()
}

/// Fresh per-test scratch directory (removed up-front so reruns of a
/// failed test never resume from stale snapshots).
fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gts-it-ckpt-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// The CI kill-resume configuration: 4-GPU Strategy-P over striped SSDs
/// with the MMBuf enabled, so resume must reproduce cold-buffer
/// boundaries, and checkpoints every 2 sweeps.
fn ck_config(host_threads: usize, dir: &Path, seed: u64, crash: Option<CrashPoint>) -> GtsConfig {
    GtsConfig {
        num_gpus: 4,
        strategy: Strategy::Performance,
        storage: StorageLocation::Ssds(2),
        mmbuf_percent: 20,
        host_threads,
        faults: Some(FaultConfig {
            crash,
            ..FaultConfig::with_seed(seed)
        }),
        checkpoint: Some(CheckpointConfig::new(dir, 2)),
        ..GtsConfig::default()
    }
}

/// One observed run: report JSON, program ranks, and the counter
/// registry with the non-deterministic `ckpt.*` wall-clock keys dropped.
struct Observed {
    result: Result<String, EngineError>,
    ranks: Vec<f64>,
    counters: BTreeMap<String, u64>,
}

fn observe(store: &GraphStore, cfg: GtsConfig) -> Observed {
    let engine = Gts::builder()
        .config(cfg)
        .telemetry(Telemetry::with_spans())
        .build()
        .unwrap();
    let mut pr = PageRank::new(store.num_vertices(), 8);
    let result = engine.run(store, &mut pr).map(|r| r.to_json());
    Observed {
        result,
        ranks: pr.ranks().iter().map(|&r| f64::from(r)).collect(),
        counters: engine
            .telemetry()
            .counters()
            .into_iter()
            .filter(|(k, _)| !k.starts_with("ckpt."))
            .collect(),
    }
}

/// Crash at a sweep boundary, resume, and require the resumed run to be
/// byte-identical to the never-crashed run — at 1 and 4 host threads.
#[test]
fn kill_at_sweep_boundary_then_resume_is_byte_identical() {
    let store = store();
    let mut cells: Vec<String> = Vec::new();
    for threads in [1usize, 4] {
        let base_dir = tmp(&format!("base-{threads}"));
        let crash_dir = tmp(&format!("crash-{threads}"));

        // The baseline checkpoints at the same cadence (boundary resets
        // are part of the deterministic schedule) but never crashes.
        let clean = observe(&store, ck_config(threads, &base_dir, 0xA11CE, None));
        let clean_json = clean.result.expect("uncrashed run completes");

        // Killed at the sweep-5 boundary: the last snapshot is sweep 4.
        let killed = observe(
            &store,
            ck_config(threads, &crash_dir, 0xA11CE, Some(CrashPoint::AtSweep(5))),
        );
        match killed.result {
            Err(EngineError::InjectedCrash { sweep: 5 }) => {}
            other => panic!("expected injected crash at sweep 5, got {other:?}"),
        }

        // Restart from the snapshot. No crash this time.
        let resumed = observe(
            &store,
            GtsConfig {
                checkpoint: Some(CheckpointConfig::new(&crash_dir, 2).resuming()),
                ..ck_config(threads, &crash_dir, 0xA11CE, None)
            },
        );
        let resumed_json = resumed.result.expect("resumed run completes");

        assert_eq!(
            resumed_json, clean_json,
            "{threads} threads: report diverged"
        );
        assert_eq!(
            resumed.ranks, clean.ranks,
            "{threads} threads: ranks diverged"
        );
        assert_eq!(
            resumed.counters, clean.counters,
            "{threads} threads: counters diverged"
        );
        cells.push(resumed_json);

        std::fs::remove_dir_all(&base_dir).ok();
        std::fs::remove_dir_all(&crash_dir).ok();
    }
    assert_eq!(cells[0], cells[1], "host threads leaked into the report");
}

/// A crash *during* the snapshot write leaves a torn file behind; the
/// manifest-guided load must fall back to the previous good snapshot and
/// the resumed run must still match the uncrashed one exactly.
#[test]
fn torn_snapshot_falls_back_to_previous_and_still_matches() {
    let store = store();
    let base_dir = tmp("torn-base");
    let crash_dir = tmp("torn-crash");

    let clean = observe(&store, ck_config(1, &base_dir, 7, None));
    let clean_json = clean.result.expect("uncrashed run completes");

    // Die mid-write at the sweep-6 boundary: snapshots 2 and 4 are good,
    // snapshot 6 is torn (bad checksum) but named by the manifest.
    let killed = observe(
        &store,
        ck_config(1, &crash_dir, 7, Some(CrashPoint::MidSnapshotWrite(6))),
    );
    match killed.result {
        Err(EngineError::InjectedCrash { sweep: 6 }) => {}
        other => panic!("expected injected crash mid-write at sweep 6, got {other:?}"),
    }

    // The store itself must report the fallback: latest *valid* is 4.
    let ck = CkptStore::open(&crash_dir).unwrap();
    let (seq, _snap) = ck.load_latest().expect("previous snapshot still loads");
    assert_eq!(seq, 4, "torn snapshot 6 must not be the recovery point");

    let resumed = observe(
        &store,
        GtsConfig {
            checkpoint: Some(CheckpointConfig::new(&crash_dir, 2).resuming()),
            ..ck_config(1, &crash_dir, 7, None)
        },
    );
    assert_eq!(
        resumed.result.expect("resume from fallback completes"),
        clean_json,
        "report diverged after torn-write fallback"
    );
    assert_eq!(resumed.ranks, clean.ranks);
    assert_eq!(resumed.counters, clean.counters);

    std::fs::remove_dir_all(&base_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

/// The traversal path (frontier bitmaps, per-sweep plans) survives
/// kill-and-resume too: BFS levels and report match the uncrashed run.
#[test]
fn bfs_traversal_survives_kill_and_resume() {
    let store = store();
    let base_dir = tmp("bfs-base");
    let crash_dir = tmp("bfs-crash");
    let cfg = |dir: &Path, crash: Option<CrashPoint>, resume: bool| {
        let ck = CheckpointConfig::new(dir, 1);
        GtsConfig {
            checkpoint: Some(if resume { ck.resuming() } else { ck }),
            ..ck_config(2, dir, 3, crash)
        }
    };
    let run = |c: GtsConfig| {
        let engine = Gts::new(c);
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        let result = engine.run(&store, &mut bfs).map(|r| r.to_json());
        (result, bfs.levels().to_vec())
    };

    let (clean_json, clean_levels) = {
        let (r, l) = run(cfg(&base_dir, None, false));
        (r.expect("uncrashed BFS completes"), l)
    };
    let (killed, _) = run(cfg(&crash_dir, Some(CrashPoint::AtSweep(2)), false));
    assert!(
        matches!(killed, Err(EngineError::InjectedCrash { sweep: 2 })),
        "{killed:?}"
    );
    let (resumed, levels) = run(cfg(&crash_dir, None, true));
    assert_eq!(resumed.expect("resumed BFS completes"), clean_json);
    assert_eq!(levels, clean_levels, "BFS levels diverged after resume");

    std::fs::remove_dir_all(&base_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

/// Blowing the run budget surfaces as a typed error, flushes a final
/// checkpoint, keeps the trace exportable — and the budget-free resume
/// from that checkpoint finishes with the uncrashed run's exact
/// *results*. (The report's simulated timings may differ: the emergency
/// checkpoint can land mid-cadence, adding a cold cache/MMBuf boundary
/// the uncrashed run never had. Kill-and-resume byte-identity is a
/// boundary-checkpoint property; the deadline contract is typed error +
/// valid snapshot + exact results.)
#[test]
fn run_budget_exceeded_checkpoints_then_resumes_to_the_same_answer() {
    let store = store();
    let base_dir = tmp("budget-base");
    let dead_dir = tmp("budget-dead");

    let clean = observe(&store, ck_config(1, &base_dir, 11, None));
    let clean_json = clean.result.expect("uncrashed run completes");

    // A budget of 1 ns trips at the first watchdog check (end of the
    // first sweep), long before the run can finish.
    let engine = Gts::builder()
        .config(GtsConfig {
            run_budget_ns: Some(1),
            ..ck_config(1, &dead_dir, 11, None)
        })
        .telemetry(Telemetry::with_spans())
        .build()
        .unwrap();
    let mut pr = PageRank::new(store.num_vertices(), 8);
    match engine.run(&store, &mut pr) {
        Err(EngineError::DeadlineExceeded {
            what: "run_budget_ns",
            limit_ns: 1,
            elapsed_ns,
        }) => assert!(elapsed_ns > 1, "elapsed must report the overrun"),
        other => panic!("expected run-budget deadline, got {other:?}"),
    }
    // The final checkpoint was flushed and is valid (load_latest decodes
    // the snapshot, which includes its checksum verification)…
    let ck = CkptStore::open(&dead_dir).unwrap();
    let (_, snap) = ck.load_latest().expect("deadline flushes a checkpoint");
    assert!(snap.section("clock").is_ok(), "snapshot decodes intact");
    // …and the trace is still exportable (spans were not lost).
    let trace = engine.telemetry().to_chrome_trace();
    assert!(trace.contains("ckpt"), "trace lost the checkpoint span");

    let resumed = observe(
        &store,
        GtsConfig {
            checkpoint: Some(CheckpointConfig::new(&dead_dir, 2).resuming()),
            ..ck_config(1, &dead_dir, 11, None)
        },
    );
    let resumed_json = resumed.result.expect("resume after deadline completes");
    assert_eq!(resumed.ranks, clean.ranks, "ranks diverged after deadline");
    for key in ["\"sweeps\": ", "\"edges_traversed\": "] {
        let field = |json: &str| {
            let at = json.find(key).map(|i| i + key.len()).unwrap();
            json[at..].split(',').next().unwrap().to_owned()
        };
        assert_eq!(
            field(&resumed_json),
            field(&clean_json),
            "{key} diverged after deadline + resume"
        );
    }

    std::fs::remove_dir_all(&base_dir).ok();
    std::fs::remove_dir_all(&dead_dir).ok();
}

/// The per-sweep deadline trips independently of the run budget and is
/// typed even with no checkpointing configured at all.
#[test]
fn sweep_deadline_is_typed_without_checkpointing() {
    let store = store();
    let cfg = GtsConfig {
        num_gpus: 2,
        strategy: Strategy::Performance,
        storage: StorageLocation::InMemory,
        sweep_deadline_ns: Some(1),
        ..GtsConfig::default()
    };
    let engine = Gts::new(cfg);
    let mut pr = PageRank::new(store.num_vertices(), 4);
    match engine.run(&store, &mut pr) {
        Err(EngineError::DeadlineExceeded {
            what: "sweep_deadline_ns",
            limit_ns: 1,
            elapsed_ns,
        }) => assert!(elapsed_ns > 1),
        other => panic!("expected sweep deadline, got {other:?}"),
    }
}

/// A run that *finishes* under budget never reports a deadline — the
/// watchdog must not fire on the final boundary of a completed run.
#[test]
fn generous_budgets_never_trip() {
    let store = store();
    let cfg = GtsConfig {
        num_gpus: 2,
        strategy: Strategy::Performance,
        storage: StorageLocation::InMemory,
        sweep_deadline_ns: Some(u64::MAX),
        run_budget_ns: Some(u64::MAX),
        ..GtsConfig::default()
    };
    let engine = Gts::new(cfg);
    let mut pr = PageRank::new(store.num_vertices(), 4);
    engine.run(&store, &mut pr).expect("generous budgets pass");
}

/// Resuming against a different configuration (or graph) is refused with
/// a typed fingerprint mismatch, not silently-wrong results.
#[test]
fn resume_refuses_a_mismatched_config_or_store() {
    let store = store();
    let dir = tmp("mismatch");

    let killed = observe(&store, ck_config(1, &dir, 5, Some(CrashPoint::AtSweep(4))));
    assert!(matches!(
        killed.result,
        Err(EngineError::InjectedCrash { sweep: 4 })
    ));

    // Same snapshot, different GPU count: config fingerprint mismatch.
    let wrong_cfg = GtsConfig {
        num_gpus: 2,
        checkpoint: Some(CheckpointConfig::new(&dir, 2).resuming()),
        ..ck_config(1, &dir, 5, None)
    };
    match observe(&store, wrong_cfg).result {
        Err(EngineError::Checkpoint(CkptError::Mismatch { what, .. })) => {
            assert_eq!(what, "config fingerprint");
        }
        other => panic!("expected config-fingerprint mismatch, got {other:?}"),
    }

    // Same config, different graph: store fingerprint mismatch.
    let other_store = build_graph_store(
        &rmat(8),
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
    )
    .unwrap();
    let resume_cfg = GtsConfig {
        checkpoint: Some(CheckpointConfig::new(&dir, 2).resuming()),
        ..ck_config(1, &dir, 5, None)
    };
    match observe(&other_store, resume_cfg).result {
        Err(EngineError::Checkpoint(CkptError::Mismatch { what, .. })) => {
            assert_eq!(what, "store fingerprint");
        }
        other => panic!("expected store-fingerprint mismatch, got {other:?}"),
    }

    // An empty directory has nothing to resume from.
    let empty = tmp("mismatch-empty");
    let cold_cfg = GtsConfig {
        checkpoint: Some(CheckpointConfig::new(&empty, 2).resuming()),
        ..ck_config(1, &empty, 5, None)
    };
    assert!(matches!(
        observe(&store, cold_cfg).result,
        Err(EngineError::Checkpoint(CkptError::NoSnapshot { .. }))
    ));

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

/// Checkpoint/watchdog configuration is validated up front with typed
/// errors, not deep-in-the-run surprises.
#[test]
fn checkpoint_and_deadline_config_is_validated() {
    let zero_every = GtsConfig {
        checkpoint: Some(CheckpointConfig::new("unused", 0)),
        ..GtsConfig::default()
    };
    let e = zero_every.validate().unwrap_err();
    assert!(e.to_string().contains("checkpoint.every"), "{e}");

    for (what, cfg) in [
        (
            "sweep_deadline_ns",
            GtsConfig {
                sweep_deadline_ns: Some(0),
                ..GtsConfig::default()
            },
        ),
        (
            "run_budget_ns",
            GtsConfig {
                run_budget_ns: Some(0),
                ..GtsConfig::default()
            },
        ),
    ] {
        let e = cfg.validate().unwrap_err();
        assert!(e.to_string().contains(what), "{what}: {e}");
    }
}
