//! Every engine in the workspace — GTS and all seven baselines — must
//! produce identical results for the same algorithm on the same graph.
//! This is the cross-engine guarantee behind the comparison figures: they
//! compare *performance models* of engines that all compute the truth.

use gts_baselines::bsp::BspEngine;
use gts_baselines::cluster::{ClusterConfig, FrameworkProfile};
use gts_baselines::cpu::{CpuEngine, CpuProfile};
use gts_baselines::gas::GasEngine;
use gts_baselines::gpu_only::{GpuOnlyEngine, GpuOnlyProfile};
use gts_baselines::totem::{Totem, TotemConfig};
use gts_baselines::xstream::{XStream, XStreamConfig};
use gts_core::engine::{Gts, GtsConfig};
use gts_core::programs::{Bfs, Cc, PageRank, Sssp};
use gts_gpu::GpuConfig;
use gts_graph::generate::rmat;
use gts_graph::{reference, Csr};
use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

fn graph() -> Csr {
    Csr::from_edge_list(&rmat(10))
}

fn gts_bfs(csr_graph: &Csr) -> Vec<u32> {
    let edges: Vec<(u32, u32)> = csr_graph.edges().collect();
    let el = gts_graph::EdgeList::new(csr_graph.num_vertices(), edges);
    let store =
        build_graph_store(&el, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 2048)).unwrap();
    let mut bfs = Bfs::new(store.num_vertices(), 0);
    Gts::new(GtsConfig::default())
        .run(&store, &mut bfs)
        .unwrap();
    bfs.levels_u32()
}

#[test]
fn all_engines_agree_on_bfs() {
    let g = graph();
    let want = reference::bfs(&g, 0);
    assert_eq!(gts_bfs(&g), want, "GTS");
    for profile in [
        FrameworkProfile::giraph(),
        FrameworkProfile::graphx(),
        FrameworkProfile::naiad(),
    ] {
        let name = profile.name;
        let e = BspEngine::new(ClusterConfig::paper_cluster(), profile);
        assert_eq!(e.run_bfs(&g, 0).unwrap().0, want, "{name}");
    }
    assert_eq!(
        GasEngine::new(ClusterConfig::paper_cluster())
            .run_bfs(&g, 0)
            .unwrap()
            .0,
        want,
        "PowerGraph"
    );
    for profile in [
        CpuProfile::mtgl(),
        CpuProfile::galois(),
        CpuProfile::ligra(),
        CpuProfile::ligra_plus(),
    ] {
        let name = profile.name;
        assert_eq!(
            CpuEngine::new(profile).run_bfs(&g, 0).unwrap().0,
            want,
            "{name}"
        );
    }
    assert_eq!(
        Totem::new(TotemConfig::new(GpuConfig::titan_x()))
            .run_bfs(&g, 0)
            .unwrap()
            .0,
        want,
        "TOTEM"
    );
    assert_eq!(
        GpuOnlyEngine::new(GpuOnlyProfile::cusha(), GpuConfig::titan_x())
            .run_bfs(&g, 0)
            .unwrap()
            .0,
        want,
        "CuSha"
    );
    assert_eq!(
        XStream::new(XStreamConfig::default())
            .run_bfs(&g, 0)
            .unwrap()
            .0,
        want,
        "X-Stream"
    );
}

#[test]
fn all_engines_agree_on_pagerank() {
    let g = graph();
    let want = reference::pagerank(&g, 0.85, 5);
    let close = |got: &[f64], name: &str| {
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-10, "{name}");
        }
    };
    let e = BspEngine::new(ClusterConfig::paper_cluster(), FrameworkProfile::giraph());
    close(&e.run_pagerank(&g, 5).unwrap().0, "Giraph");
    close(
        &GasEngine::new(ClusterConfig::paper_cluster())
            .run_pagerank(&g, 5)
            .unwrap()
            .0,
        "PowerGraph",
    );
    close(
        &CpuEngine::new(CpuProfile::ligra())
            .run_pagerank(&g, 5)
            .unwrap()
            .0,
        "Ligra",
    );
    close(
        &Totem::new(TotemConfig::new(GpuConfig::titan_x()))
            .run_pagerank(&g, 5)
            .unwrap()
            .0,
        "TOTEM",
    );
    close(
        &XStream::new(XStreamConfig::default())
            .run_pagerank(&g, 5)
            .unwrap()
            .0,
        "X-Stream",
    );

    // GTS runs in f32; compare at f32 tolerance.
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let el = gts_graph::EdgeList::new(g.num_vertices(), edges);
    let store =
        build_graph_store(&el, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 2048)).unwrap();
    let mut pr = PageRank::new(store.num_vertices(), 5);
    Gts::new(GtsConfig::default()).run(&store, &mut pr).unwrap();
    for (a, b) in pr.ranks().iter().zip(&want) {
        assert!((*a as f64 - b).abs() < 1e-4, "GTS");
    }
}

#[test]
fn traversal_engines_agree_on_sssp_and_cc() {
    let g = graph();
    let want_sssp = reference::sssp(&g, 0);
    let want_cc = reference::connected_components(&g);
    let bsp = BspEngine::new(ClusterConfig::paper_cluster(), FrameworkProfile::graphx());
    assert_eq!(bsp.run_sssp(&g, 0).unwrap().0, want_sssp);
    assert_eq!(bsp.run_cc(&g).unwrap().0, want_cc);
    let totem = Totem::new(TotemConfig::new(GpuConfig::titan_x()));
    assert_eq!(totem.run_sssp(&g, 0).unwrap().0, want_sssp);
    assert_eq!(totem.run_cc(&g).unwrap().0, want_cc);

    let edges: Vec<(u32, u32)> = g.edges().collect();
    let el = gts_graph::EdgeList::new(g.num_vertices(), edges);
    let store =
        build_graph_store(&el, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 2048)).unwrap();
    let mut sssp = Sssp::new(store.num_vertices(), 0);
    Gts::new(GtsConfig::default())
        .run(&store, &mut sssp)
        .unwrap();
    assert_eq!(sssp.distances(), &want_sssp[..]);
    let mut cc = Cc::new(store.num_vertices());
    Gts::new(GtsConfig::default()).run(&store, &mut cc).unwrap();
    assert_eq!(cc.labels_u32(), want_cc);
}

#[test]
fn performance_ordering_matches_the_papers_headlines() {
    // The relationships the figures hinge on, checked as inequalities on a
    // mid-size graph: GTS beats the distributed engines by a wide margin
    // for PageRank; PowerGraph is the best distributed engine; frontier
    // CPU engines beat MTGL.
    let g = Csr::from_edge_list(&rmat(13));
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let el = gts_graph::EdgeList::new(g.num_vertices(), edges);
    let store = build_graph_store(
        &el,
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 65536),
    )
    .unwrap();
    let mut pr = PageRank::new(store.num_vertices(), 5);
    let gts = Gts::new(GtsConfig::default())
        .run(&store, &mut pr)
        .unwrap()
        .elapsed;

    let cluster = ClusterConfig::paper_cluster();
    let giraph = BspEngine::new(cluster.clone(), FrameworkProfile::giraph())
        .run_pagerank(&g, 5)
        .unwrap()
        .1
        .elapsed;
    let powergraph = GasEngine::new(cluster)
        .run_pagerank(&g, 5)
        .unwrap()
        .1
        .elapsed;
    assert!(gts < powergraph, "GTS {gts} vs PowerGraph {powergraph}");
    assert!(
        powergraph < giraph,
        "PowerGraph {powergraph} vs Giraph {giraph}"
    );
    assert!(
        gts.as_secs_f64() * 5.0 < giraph.as_secs_f64(),
        "GTS must win by a wide margin"
    );
}
