//! On-disk store persistence across crates: a store saved to a GTSPAGES
//! file and loaded back must be a drop-in replacement — identical results
//! *and* identical simulated timing under every engine configuration.

use gts_core::engine::{Gts, GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, PageRank};
use gts_core::Strategy;
use gts_graph::generate::rmat;
use gts_storage::{build_graph_store, load_store, save_store, PageFormatConfig, PhysicalIdConfig};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gts-it-persist-{}-{name}", std::process::id()));
    p
}

#[test]
fn loaded_store_is_a_drop_in_replacement() {
    let graph = rmat(11);
    let built = build_graph_store(
        &graph,
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 2048),
    )
    .unwrap();
    let path = tmp("dropin");
    save_store(&built, &path).unwrap();
    let loaded = load_store(&path).unwrap();
    std::fs::remove_file(&path).ok();

    for cfg in [
        GtsConfig::default(),
        GtsConfig {
            num_gpus: 2,
            strategy: Strategy::Scalability,
            storage: StorageLocation::Ssds(2),
            mmbuf_percent: 10,
            ..GtsConfig::default()
        },
    ] {
        let mut a = Bfs::new(built.num_vertices(), 0);
        let ra = Gts::new(cfg.clone()).run(&built, &mut a).unwrap();
        let mut b = Bfs::new(loaded.num_vertices(), 0);
        let rb = Gts::new(cfg.clone()).run(&loaded, &mut b).unwrap();
        assert_eq!(a.levels(), b.levels());
        assert_eq!(ra.elapsed, rb.elapsed, "timing must be identical too");
        assert_eq!(ra.pages_streamed, rb.pages_streamed);

        let mut pa = PageRank::new(built.num_vertices(), 3);
        Gts::new(cfg.clone()).run(&built, &mut pa).unwrap();
        let mut pb = PageRank::new(loaded.num_vertices(), 3);
        Gts::new(cfg).run(&loaded, &mut pb).unwrap();
        assert_eq!(pa.ranks(), pb.ranks(), "f32 ranks must be bit-identical");
    }
}

#[test]
fn save_load_save_is_byte_stable() {
    let graph = rmat(10);
    let store = build_graph_store(
        &graph,
        PageFormatConfig::new(PhysicalIdConfig::TRILLION, 4096),
    )
    .unwrap();
    let p1 = tmp("stable1");
    let p2 = tmp("stable2");
    save_store(&store, &p1).unwrap();
    let loaded = load_store(&p1).unwrap();
    save_store(&loaded, &p2).unwrap();
    let b1 = std::fs::read(&p1).unwrap();
    let b2 = std::fs::read(&p2).unwrap();
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
    assert_eq!(b1, b2, "round-tripping must be byte-identical");
}
