//! End-to-end integration: edge list → CSR → slotted pages → GTS engine →
//! results equal the sequential references, across algorithms, datasets
//! and format configurations.

use gts_core::engine::{Gts, GtsConfig};
use gts_core::programs::{Bc, Bfs, Cc, PageRank, Sssp};
use gts_graph::generate::{erdos_renyi, rmat, web_like, Rmat};
use gts_graph::{reference, Csr, EdgeList};
use gts_storage::{build_graph_store, GraphStore, PageFormatConfig, PhysicalIdConfig};

fn store_for(graph: &EdgeList, page_size: usize) -> GraphStore {
    build_graph_store(
        graph,
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, page_size),
    )
    .expect("store builds")
}

fn graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        ("rmat10", rmat(10)),
        ("rmat12", rmat(12)),
        ("dense-rmat9", Rmat::new(9).with_edge_factor(40).generate()),
        ("erdos", erdos_renyi(3000, 20_000, 11)),
        ("web", web_like(24, 50, 3, 5)),
        (
            "line",
            EdgeList::new(64, (0..63).map(|i| (i, i + 1)).collect()),
        ),
        ("isolated", EdgeList::new(500, vec![(0, 499), (499, 0)])),
    ]
}

#[test]
fn bfs_matches_reference_everywhere() {
    for (name, graph) in graphs() {
        let store = store_for(&graph, 2048);
        let csr = Csr::from_edge_list(&graph);
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        Gts::new(GtsConfig::default())
            .run(&store, &mut bfs)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(bfs.levels_u32(), reference::bfs(&csr, 0), "{name}");
    }
}

#[test]
fn pagerank_matches_reference_everywhere() {
    for (name, graph) in graphs() {
        let store = store_for(&graph, 2048);
        let csr = Csr::from_edge_list(&graph);
        let mut pr = PageRank::new(store.num_vertices(), 6);
        Gts::new(GtsConfig::default()).run(&store, &mut pr).unwrap();
        let want = reference::pagerank(&csr, 0.85, 6);
        for (v, (got, want)) in pr.ranks().iter().zip(&want).enumerate() {
            assert!(
                (*got as f64 - want).abs() < 1e-4,
                "{name} vertex {v}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn sssp_matches_reference_everywhere() {
    for (name, graph) in graphs() {
        let store = store_for(&graph, 2048);
        let csr = Csr::from_edge_list(&graph);
        let mut sssp = Sssp::new(store.num_vertices(), 0);
        Gts::new(GtsConfig::default())
            .run(&store, &mut sssp)
            .unwrap();
        assert_eq!(sssp.distances(), &reference::sssp(&csr, 0)[..], "{name}");
    }
}

#[test]
fn cc_matches_reference_everywhere() {
    for (name, graph) in graphs() {
        let store = store_for(&graph, 2048);
        let csr = Csr::from_edge_list(&graph);
        let mut cc = Cc::new(store.num_vertices());
        Gts::new(GtsConfig::default()).run(&store, &mut cc).unwrap();
        let want = reference::connected_components(&csr);
        assert_eq!(cc.labels_u32(), want, "{name}");
    }
}

#[test]
fn bc_matches_reference_everywhere() {
    for (name, graph) in graphs() {
        let store = store_for(&graph, 2048);
        let csr = Csr::from_edge_list(&graph);
        let mut bc = Bc::new(store.num_vertices(), 0);
        Gts::new(GtsConfig::default()).run(&store, &mut bc).unwrap();
        let want = reference::betweenness(&csr, &[0]);
        for (v, (got, want)) in bc.centrality().iter().zip(&want).enumerate() {
            let scale = want.abs().max(1.0);
            assert!(
                (*got as f64 - want).abs() / scale < 1e-3,
                "{name} vertex {v}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn results_are_invariant_to_page_size() {
    let graph = rmat(11);
    let csr = Csr::from_edge_list(&graph);
    let want = reference::bfs(&csr, 0);
    for page_size in [512usize, 1024, 4096, 65536] {
        let store = store_for(&graph, page_size);
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        Gts::new(GtsConfig::default())
            .run(&store, &mut bfs)
            .unwrap();
        assert_eq!(bfs.levels_u32(), want, "page size {page_size}");
    }
}

#[test]
fn results_are_invariant_to_physical_id_widths() {
    let graph = rmat(11);
    let csr = Csr::from_edge_list(&graph);
    let want = reference::pagerank(&csr, 0.85, 4);
    for id in [
        PhysicalIdConfig::ORIGINAL,
        PhysicalIdConfig::TRILLION,
        PhysicalIdConfig::new(2, 4),
        PhysicalIdConfig::new(4, 2),
    ] {
        let store = build_graph_store(&graph, PageFormatConfig::new(id, 4096)).expect("store");
        let mut pr = PageRank::new(store.num_vertices(), 4);
        Gts::new(GtsConfig::default()).run(&store, &mut pr).unwrap();
        for (got, want) in pr.ranks().iter().zip(&want) {
            assert!((*got as f64 - want).abs() < 1e-4, "{id}");
        }
    }
}

#[test]
fn bfs_from_every_source_class() {
    // Sources: hub (0), mid-range, isolated-ish tail vertex.
    let graph = rmat(10);
    let store = store_for(&graph, 2048);
    let csr = Csr::from_edge_list(&graph);
    for source in [0u64, 17, 513, 1023] {
        let mut bfs = Bfs::new(store.num_vertices(), source);
        Gts::new(GtsConfig::default())
            .run(&store, &mut bfs)
            .unwrap();
        assert_eq!(
            bfs.levels_u32(),
            reference::bfs(&csr, source as u32),
            "source {source}"
        );
    }
}
