//! Observability integration tests: the telemetry registry, the derived
//! [`RunReport`] view, span nesting on the simulated clock, and the
//! chrome://tracing JSON exporter — validated with a small self-contained
//! JSON parser (the workspace has no serde).

use gts_core::engine::Gts;
use gts_core::programs::{Bfs, PageRank};
use gts_core::Telemetry;
use gts_graph::generate::rmat;
use gts_storage::{build_graph_store, PageFormatConfig};
use gts_telemetry::{keys, SpanCat};

mod json {
    //! Minimal recursive-descent JSON parser, enough to validate the
    //! exporter's output structurally.

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing garbage at byte {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
        if *i < b.len() && b[*i] == c {
            *i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, i))
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => Ok(Value::Str(string(b, i)?)),
            Some(b't') => lit(b, i, "true", Value::Bool(true)),
            Some(b'f') => lit(b, i, "false", Value::Bool(false)),
            Some(b'n') => lit(b, i, "null", Value::Null),
            Some(_) => number(b, i),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {i}"))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<Value, String> {
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        expect(b, i, b'"')?;
        let mut out = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(&b[*i + 1..*i + 5])
                                .map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {i}")),
                    }
                    *i += 1;
                }
                c => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let ch_len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    out.push_str(
                        std::str::from_utf8(&b[*i..*i + ch_len]).map_err(|e| e.to_string())?,
                    );
                    *i += ch_len;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn array(b: &[u8], i: &mut usize) -> Result<Value, String> {
        expect(b, i, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(format!("expected , or ] at byte {i}")),
            }
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<Value, String> {
        expect(b, i, b'{')?;
        let mut out = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(Value::Object(out));
        }
        loop {
            skip_ws(b, i);
            let k = string(b, i)?;
            skip_ws(b, i);
            expect(b, i, b':')?;
            out.push((k, value(b, i)?));
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(format!("expected , or }} at byte {i}")),
            }
        }
    }
}

/// A small multi-stream BFS run with spans on, the Fig. 4 scenario.
fn traced_bfs_run() -> (gts_core::RunReport, Telemetry) {
    let store = build_graph_store(&rmat(10), PageFormatConfig::small_default()).unwrap();
    let engine = Gts::builder()
        .num_streams(8)
        .cache_limit_bytes(Some(0)) // force streaming so copy spans exist
        .telemetry(Telemetry::with_spans())
        .build()
        .unwrap();
    let mut bfs = Bfs::new(store.num_vertices(), 0);
    let report = engine.run(&store, &mut bfs).unwrap();
    (report, engine.telemetry().clone())
}

#[test]
fn chrome_trace_export_is_valid_and_monotone_per_track() {
    let (_, tel) = traced_bfs_run();
    let text = tel.to_chrome_trace();
    let root = json::parse(&text).expect("exporter must emit valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("top-level traceEvents array");
    assert!(events.len() > 10, "a traced run must produce events");

    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    let mut complete = 0usize;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has ph");
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_num())
            .expect("every event has ts");
        let pid = ev
            .get("pid")
            .and_then(|v| v.as_num())
            .expect("every event has pid");
        let tid = ev
            .get("tid")
            .and_then(|v| v.as_num())
            .expect("every event has tid");
        match ph {
            "M" => assert_eq!(ts, 0.0, "metadata events sit at ts 0"),
            "X" => {
                complete += 1;
                assert!(ev.get("dur").and_then(|v| v.as_num()).is_some());
                assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
                assert!(ev.get("cat").and_then(|v| v.as_str()).is_some());
                // Within one track the exporter emits events in start
                // order — what chrome://tracing expects.
                let track = (pid as u64, tid as u64);
                if let Some(prev) = last_ts.insert(track, ts) {
                    assert!(ts >= prev, "ts must be monotone per track");
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(complete > 0, "no complete events in the trace");
}

#[test]
fn cache_probes_partition_page_visits() {
    let (report, tel) = traced_bfs_run();
    let hits = tel.counter(keys::CACHE_HITS);
    let misses = tel.counter(keys::CACHE_MISSES);
    let visited: u64 = report.per_sweep.iter().map(|s| s.pages).sum();
    assert_eq!(
        hits + misses,
        visited,
        "every page visit is exactly one cache hit or one miss"
    );
    assert_eq!(misses, tel.counter(keys::PAGES_STREAMED));
}

#[test]
fn spans_are_well_nested_on_the_sim_clock() {
    let (_, tel) = traced_bfs_run();
    let spans = tel.spans();
    let run = spans
        .iter()
        .find(|s| s.cat == SpanCat::Run)
        .expect("a run span");
    for s in &spans {
        assert!(s.start <= s.end, "span {:?} runs backwards", s.name);
        assert!(
            run.start <= s.start && s.end <= run.end,
            "span {:?} [{}, {}] escapes the run span [{}, {}]",
            s.name,
            s.start,
            s.end,
            run.start,
            run.end
        );
    }
    // Sweeps tile the run: ordered, non-overlapping.
    let mut sweeps: Vec<_> = spans.iter().filter(|s| s.cat == SpanCat::Sweep).collect();
    sweeps.sort_by_key(|s| s.start);
    assert!(!sweeps.is_empty());
    for w in sweeps.windows(2) {
        assert!(w[0].end <= w[1].start, "sweep spans overlap");
    }
    // Every copy/kernel span lands inside some sweep span — except the WA
    // staging transfers, which bracket the sweep loop (initial upload
    // before sweep 0, readback after the last sweep) but stay in the run.
    for s in spans
        .iter()
        .filter(|s| matches!(s.cat, SpanCat::Copy | SpanCat::Kernel))
    {
        let in_a_sweep = sweeps
            .iter()
            .any(|sw| sw.start <= s.start && s.end <= sw.end);
        if s.cat == SpanCat::Copy && s.name.contains("WA") {
            continue;
        }
        assert!(
            in_a_sweep,
            "{:?} span {:?} outside all sweeps",
            s.cat, s.name
        );
    }
}

#[test]
fn sweep_spans_and_sweep_counters_share_one_timing_definition() {
    // The per-sweep `elapsed_ns` counter and the sweep span in the trace
    // must describe the same interval — both bracket Alg. 1 lines 13-30
    // (WA broadcast through write-backs). Check a traversal run (BFS) and
    // a sweep-mode run (PageRank, whose per-sweep WA broadcast makes the
    // sweep start earlier than the first page stream).
    let check = |tel: &Telemetry, report: &gts_core::RunReport| {
        let mut sweeps: Vec<_> = tel
            .spans()
            .into_iter()
            .filter(|s| s.cat == SpanCat::Sweep)
            .collect();
        sweeps.sort_by_key(|s| s.start);
        assert_eq!(sweeps.len(), report.sweeps as usize);
        for (j, span) in sweeps.iter().enumerate() {
            let counter = tel.counter(keys::sweep(j as u32, keys::SWEEP_ELAPSED_NS));
            assert_eq!(
                (span.end - span.start).as_nanos(),
                counter,
                "sweep {j}: span duration and elapsed_ns counter disagree"
            );
        }
    };

    let (report, tel) = traced_bfs_run();
    check(&tel, &report);

    let store = build_graph_store(&rmat(10), PageFormatConfig::small_default()).unwrap();
    let engine = Gts::builder()
        .num_streams(8)
        .cache_limit_bytes(Some(0))
        .telemetry(Telemetry::with_spans())
        .build()
        .unwrap();
    let mut pr = PageRank::new(store.num_vertices(), 3);
    let report = engine.run(&store, &mut pr).unwrap();
    check(engine.telemetry(), &report);
}

#[test]
fn derived_report_equals_the_registry_for_every_engine() {
    use gts_baselines::bsp::BspEngine;
    use gts_baselines::cpu::{CpuEngine, CpuProfile};
    use gts_baselines::gas::GasEngine;
    use gts_baselines::gpu_only::{GpuOnlyEngine, GpuOnlyProfile};
    use gts_baselines::graphchi::{GraphChi, GraphChiConfig};
    use gts_baselines::totem::{Totem, TotemConfig};
    use gts_baselines::xstream::{XStream, XStreamConfig};
    use gts_baselines::{ClusterConfig, FrameworkProfile};
    use gts_graph::Csr;

    let edges = rmat(9);
    let g = Csr::from_edge_list(&edges);

    // check() asserts the fields every engine derives from the registry.
    let check = |run: &gts_core::RunReport, tel: &Telemetry, engine: &str| {
        assert_eq!(run.engine, engine);
        assert_eq!(
            run.elapsed.as_nanos(),
            tel.counter(keys::RUN_ELAPSED_NS),
            "{engine}: elapsed"
        );
        assert_eq!(
            run.sweeps as u64,
            tel.counter(keys::RUN_SWEEPS),
            "{engine}: sweeps"
        );
        assert_eq!(
            run.network_bytes,
            tel.counter(keys::NETWORK_BYTES),
            "{engine}: network bytes"
        );
        assert_eq!(
            run.memory_peak,
            tel.counter(keys::MEMORY_PEAK),
            "{engine}: memory peak"
        );
        assert_eq!(run.per_sweep.len(), run.sweeps as usize);
        assert!(
            run.per_sweep.iter().any(|s| s.active_edges > 0),
            "{engine}: per-sweep series populated"
        );
    };

    let bsp = BspEngine::new(ClusterConfig::paper_cluster(), FrameworkProfile::giraph());
    let (_, run) = bsp.run_bfs(&g, 0).unwrap();
    check(&run, bsp.telemetry(), "Giraph");

    let gas = GasEngine::new(ClusterConfig::paper_cluster());
    let (_, run) = gas.run_bfs(&g, 0).unwrap();
    check(&run, gas.telemetry(), "PowerGraph");

    let cpu = CpuEngine::new(CpuProfile::ligra());
    let (_, run) = cpu.run_bfs(&g, 0).unwrap();
    check(&run, cpu.telemetry(), "Ligra");

    let gpu = GpuOnlyEngine::new(GpuOnlyProfile::cusha(), gts_gpu::GpuConfig::titan_x());
    let (_, run) = gpu.run_bfs(&g, 0).unwrap();
    check(&run, gpu.telemetry(), "CuSha");

    let chi = GraphChi::new(GraphChiConfig::default());
    let (_, run) = chi.run_bfs(&g, 0).unwrap();
    check(&run, chi.telemetry(), "GraphChi");

    let totem = Totem::new(TotemConfig::new(gts_gpu::GpuConfig::titan_x()));
    let (_, run) = totem.run_bfs(&g, 0).unwrap();
    check(&run, totem.telemetry(), "TOTEM");
    // BC's backward pass doubles the registry, not just the report.
    let (_, run) = totem.run_bc(&g, 0).unwrap();
    check(&run, totem.telemetry(), "TOTEM");
    assert_eq!(run.sweeps as usize, run.per_sweep.len());

    let xs = XStream::new(XStreamConfig::default());
    let (_, run) = xs.run_bfs(&g, 0).unwrap();
    check(&run, xs.telemetry(), "X-Stream");

    // And GTS itself.
    let store = build_graph_store(&edges, PageFormatConfig::small_default()).unwrap();
    let engine = Gts::builder().build().unwrap();
    let mut pr = PageRank::new(store.num_vertices(), 3);
    let run = engine.run(&store, &mut pr).unwrap();
    check(&run, engine.telemetry(), "GTS");
    assert_eq!(
        run.pages_streamed,
        engine.telemetry().counter(keys::PAGES_STREAMED)
    );
    assert_eq!(
        run.edges_traversed,
        engine.telemetry().counter(keys::EDGES_TRAVERSED)
    );
}

#[test]
fn counters_only_mode_records_no_spans() {
    let store = build_graph_store(&rmat(9), PageFormatConfig::small_default()).unwrap();
    let engine = Gts::builder().build().unwrap();
    let mut bfs = Bfs::new(store.num_vertices(), 0);
    engine.run(&store, &mut bfs).unwrap();
    assert_eq!(engine.telemetry().span_count(), 0);
    assert!(engine.telemetry().counter(keys::PAGES_STREAMED) > 0);
}
